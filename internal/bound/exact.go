package bound

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/taskmap"
)

// ErrPathLimit reports that a per-driver path enumeration blew its cap.
// Callers that feed untrusted instance sizes (the tightness CLI) match
// it with errors.Is to distinguish "too big to brute-force" from a
// genuinely malformed instance.
var ErrPathLimit = errors.New("path limit exceeded")

// This file contains the exact solvers for the small-scale evaluation
// (§VI-B: "for n ≤ 50 and m ≤ 100, we can use the integer programming
// solvers of CPLEX or MOSEK to calculate the exact value of the best
// integer solution Z*").

// Exact is an integral optimum with its assignment.
type Exact struct {
	Objective float64
	Paths     []taskmap.Path // one entry per driver with a non-empty list
	Nodes     int            // B&B nodes (0 for brute force)
	RootBound float64        // LP relaxation at the root: equals Z*_f of the arc formulation
}

// arc endpoint sentinels for the MILP encoding.
const (
	srcNode = -2
	snkNode = -1
)

type arcVar struct {
	driver   int
	from, to int // task indices, or srcNode / snkNode
	col      int
	cost     float64
}

// ExactMILP solves the arc formulation (Eqs. 4, 5a–5h) to integral
// optimality with branch-and-bound. Intended for the paper's small
// scale; it returns an error if the node cap is exhausted.
func ExactMILP(g *taskmap.Graph, maxNodes int) (Exact, error) {
	n := g.N()
	m := g.M()

	var arcs []arcVar
	// Assemble arcs per driver.
	for i := 0; i < n; i++ {
		arcs = append(arcs, arcVar{driver: i, from: srcNode, to: snkNode, cost: g.Baseline[i]})
		for t := 0; t < m; t++ {
			if !g.Feasible(i, t) {
				continue
			}
			if g.SourceReachable(i, t) {
				arcs = append(arcs, arcVar{driver: i, from: srcNode, to: t, cost: g.SourceCost(i, t)})
			}
			arcs = append(arcs, arcVar{driver: i, from: t, to: snkNode, cost: g.SinkCost(i, t)})
			for _, s := range g.Succs[t] {
				if g.Feasible(i, int(s)) {
					arcs = append(arcs, arcVar{
						driver: i, from: t, to: int(s),
						cost: g.Market.DeadheadCost(g.Tasks[t], g.Tasks[s]),
					})
				}
			}
		}
	}

	prob := lp.NewProblem(len(arcs))
	for k := range arcs {
		arcs[k].col = k
		a := &arcs[k]
		obj := -a.cost
		if a.to >= 0 {
			obj += g.Value[a.to] // margin p_m − ĉ_m collected on entry to m
		}
		prob.SetObjective(k, obj)
	}

	// (5c) source out-degree = 1 per driver; (5d) sink in-degree = 1.
	srcRows := make([][]lp.Entry, n)
	snkRows := make([][]lp.Entry, n)
	// (5e)(5f) flow conservation per (driver, task).
	inflow := make(map[[2]int][]lp.Entry)
	outflow := make(map[[2]int][]lp.Entry)
	// (5a) per task packing across drivers.
	taskRows := make([][]lp.Entry, m)
	// (5b) individual rationality per driver.
	irRows := make([][]lp.Entry, n)

	for _, a := range arcs {
		e := lp.Entry{Col: a.col, Val: 1}
		if a.from == srcNode {
			srcRows[a.driver] = append(srcRows[a.driver], e)
		} else {
			outflow[[2]int{a.driver, a.from}] = append(outflow[[2]int{a.driver, a.from}], e)
		}
		if a.to == snkNode {
			snkRows[a.driver] = append(snkRows[a.driver], e)
		} else {
			inflow[[2]int{a.driver, a.to}] = append(inflow[[2]int{a.driver, a.to}], e)
			taskRows[a.to] = append(taskRows[a.to], lp.Entry{Col: a.col, Val: 1})
		}
		// IR row: profit contribution of this arc for its driver.
		coeff := -a.cost
		if a.to >= 0 {
			coeff += g.Value[a.to]
		}
		if coeff != 0 {
			irRows[a.driver] = append(irRows[a.driver], lp.Entry{Col: a.col, Val: coeff})
		}
	}

	for i := 0; i < n; i++ {
		prob.AddRow(lp.EQ, 1, srcRows[i]...)
		prob.AddRow(lp.EQ, 1, snkRows[i]...)
		if len(irRows[i]) > 0 {
			// profit + baseline ≥ 0 (Eq. 5b with the baseline credit).
			prob.AddRow(lp.GE, -g.Baseline[i], irRows[i]...)
		}
	}
	for i := 0; i < n; i++ {
		for t := 0; t < m; t++ {
			in := inflow[[2]int{i, t}]
			out := outflow[[2]int{i, t}]
			if len(in) == 0 && len(out) == 0 {
				continue
			}
			row := append([]lp.Entry(nil), in...)
			for _, e := range out {
				row = append(row, lp.Entry{Col: e.Col, Val: -1})
			}
			prob.AddRow(lp.EQ, 0, row...)
		}
	}
	for t := 0; t < m; t++ {
		if len(taskRows[t]) > 0 {
			prob.AddRow(lp.LE, 1, taskRows[t]...)
		}
	}

	binary := make([]int, len(arcs))
	for k := range binary {
		binary[k] = k
	}
	res, err := lp.SolveBinary(prob, binary, maxNodes)
	if err != nil {
		return Exact{}, fmt.Errorf("bound: exact MILP: %w", err)
	}
	if res.Status != lp.Optimal {
		return Exact{}, fmt.Errorf("bound: exact MILP status %v after %d nodes", res.Status, res.Nodes)
	}

	// The objective omitted the constant Σ_n baseline credit.
	var baseSum float64
	for i := 0; i < n; i++ {
		baseSum += g.Baseline[i]
	}
	ex := Exact{
		Objective: res.Objective + baseSum,
		Nodes:     res.Nodes,
		RootBound: res.RootBound + baseSum,
	}

	// Reconstruct paths by following chosen arcs.
	next := make(map[[2]int]int) // (driver, from) -> to
	for _, a := range arcs {
		if res.X[a.col] > 0.5 {
			next[[2]int{a.driver, a.from}] = a.to
		}
	}
	for i := 0; i < n; i++ {
		var tasks []int
		cur, ok := next[[2]int{i, srcNode}]
		for ok && cur != snkNode {
			tasks = append(tasks, cur)
			cur, ok = next[[2]int{i, cur}]
		}
		if len(tasks) == 0 {
			continue
		}
		profit, err := g.PathProfit(i, tasks)
		if err != nil {
			return Exact{}, fmt.Errorf("bound: MILP produced invalid path for driver %d: %w", i, err)
		}
		ex.Paths = append(ex.Paths, taskmap.Path{Driver: i, Tasks: tasks, Profit: profit})
	}
	return ex, nil
}

// EnumeratePaths lists every nonempty source→destination task sequence
// for driver n, up to the cap. It is exponential and exists for the
// brute-force reference solver and tests.
func EnumeratePaths(g *taskmap.Graph, n, cap int) ([]taskmap.Path, error) {
	var out []taskmap.Path
	var cur []int
	var dfs func(last int) error
	dfs = func(last int) error {
		if len(out) > cap {
			return fmt.Errorf("bound: driver %d exceeds %d paths: %w", n, cap, ErrPathLimit)
		}
		profit, err := g.PathProfit(n, cur)
		if err != nil {
			return err
		}
		out = append(out, taskmap.Path{Driver: n, Tasks: append([]int(nil), cur...), Profit: profit})
		for _, s := range g.Succs[last] {
			if g.Feasible(n, int(s)) {
				cur = append(cur, int(s))
				if err := dfs(int(s)); err != nil {
					return err
				}
				cur = cur[:len(cur)-1]
			}
		}
		return nil
	}
	for t := 0; t < g.M(); t++ {
		if g.Feasible(n, t) && g.SourceReachable(n, t) {
			cur = append(cur, t)
			if err := dfs(t); err != nil {
				return nil, err
			}
			cur = cur[:len(cur)-1]
		}
	}
	return out, nil
}

// BruteForce computes the exact optimum by exhaustive search over
// node-disjoint combinations of per-driver paths. Only usable on tiny
// instances; the per-driver path count is capped at pathCap (default
// 5000 when ≤ 0).
func BruteForce(g *taskmap.Graph, pathCap int) (Exact, error) {
	if pathCap <= 0 {
		pathCap = 5000
	}
	n := g.N()
	all := make([][]taskmap.Path, n)
	for i := 0; i < n; i++ {
		ps, err := EnumeratePaths(g, i, pathCap)
		if err != nil {
			return Exact{}, err
		}
		// Keep only strictly profitable paths; empty is the implicit
		// alternative.
		var kept []taskmap.Path
		for _, p := range ps {
			if p.Profit > 0 {
				kept = append(kept, p)
			}
		}
		all[i] = kept
	}

	used := make([]bool, g.M())
	best := 0.0
	var bestPaths []taskmap.Path
	var chosen []taskmap.Path
	var rec func(i int, total float64)
	rec = func(i int, total float64) {
		if i == n {
			if total > best {
				best = total
				bestPaths = append([]taskmap.Path(nil), chosen...)
			}
			return
		}
		rec(i+1, total) // driver i takes nothing
		for _, p := range all[i] {
			ok := true
			for _, t := range p.Tasks {
				if used[t] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, t := range p.Tasks {
				used[t] = true
			}
			chosen = append(chosen, p)
			rec(i+1, total+p.Profit)
			chosen = chosen[:len(chosen)-1]
			for _, t := range p.Tasks {
				used[t] = false
			}
		}
	}
	rec(0, 0)
	if math.IsInf(best, -1) {
		best = 0
	}
	return Exact{Objective: best, Paths: bestPaths}, nil
}
