package bound

// The oracle-rail solver: a warm-started, component-decomposed branch
// and bound over a compiled offline.Instance. Where BruteForce walks
// the dense taskmap, this solver works per connected component of the
// hindsight pair graph, enumerating only each component's per-driver
// positive-value paths, pruning with suffix bounds and (optionally) LP
// reduced-cost fixing against the incumbent, and falling back to a
// Lagrangian upper bound on components too big to enumerate. On small
// instances it reproduces BruteForce bit for bit — same enumeration
// order, same strict-improvement rule, same left-associated sums — so
// the brute-force solver stays the differential oracle.
//
// Determinism: components are self-contained (every scratch buffer is
// per worker) and merged in component order, so the result is
// bit-identical for every Workers value.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
	"repro/internal/offline"
	"repro/internal/taskmap"
)

// SparseOptions configures SparseSolver.Solve. The zero value solves
// serially with BruteForce's path cap and no LP pruning.
type SparseOptions struct {
	// Workers bounds the component fan-out; values below 2 run
	// serially. The solution is bit-identical for every value.
	Workers int

	// Warm holds one task list per ORIGINAL driver index (the shape of
	// sim.Result.DriverPaths): the online policy's own assignment.
	// Paths that are infeasible in hindsight, overlap an earlier
	// driver's warm path, or have non-positive value are dropped and
	// counted. The surviving set seeds each component's incumbent and
	// the LP crash basis.
	Warm [][]int

	// PathCap bounds per-driver path enumeration (BruteForce's 5000
	// when ≤ 0); CompPathCap bounds a component's total kept paths
	// (default 200000). A component over either cap is not enumerated:
	// it keeps the incumbent and reports a Lagrangian upper bound.
	PathCap     int
	CompPathCap int

	// LP enables a per-component root LP (path-packing relaxation,
	// warm-started from the incumbent columns) whose reduced costs fix
	// out columns that cannot beat the incumbent. Components larger
	// than LPMaxRows rows (tasks+drivers, default 256) or LPMaxCols
	// path columns (default 2048) skip the LP.
	LP        bool
	LPMaxRows int
	LPMaxCols int

	// LagIters bounds the subgradient iterations of the fallback upper
	// bound (default 60).
	LagIters int

	// NodeCap bounds the branch-and-bound nodes spent per component
	// (default 5e6). A component that exhausts it keeps the better of
	// the best solution found so far and the incumbent, turns inexact,
	// and reports a Lagrangian upper bound. The abort point depends
	// only on the component's own deterministic node order, so results
	// stay bit-identical for every Workers value.
	NodeCap int

	// SkipPaths suppresses Solution.Paths materialization; with LP off
	// and Workers < 2 the re-solve path then allocates nothing in
	// steady state.
	SkipPaths bool
}

// SparseSolution is the solver's result. TaskDriver aliases a solver
// arena — valid until the next Solve.
type SparseSolution struct {
	Objective  float64
	UpperBound float64 // ≥ Objective; equal when Exact
	Exact      bool    // every component solved to optimality

	Components      int
	ExactComponents int
	Nodes           int64 // B&B nodes over all components

	WarmKept    int // warm paths that survived hindsight validation
	WarmDropped int
	LPSolved    int // component root LPs solved to optimality
	LPFixed     int // path columns fixed out by reduced cost

	// Paths lists the chosen paths in ascending original-driver order
	// (BruteForce's order); nil under SkipPaths. TaskDriver maps each
	// task to its serving original driver, or -1.
	Paths      []taskmap.Path
	TaskDriver []int32
}

// SparseSolver holds the reusable arenas. The zero value is ready;
// buffers grow to the high-water mark and are reused across solves.
type SparseSolver struct {
	scratch []sparseScratch
	compRes []compResult

	taskDriver []int32
	drvVal     []float64
	drvHas     []bool

	// optBuf keeps the normalized options addressable without letting
	// them escape per call (the worker goroutines share the pointer).
	optBuf SparseOptions
}

type pathRec struct {
	off, n int32 // slots in scratch.pathSlots
	value  float64
}

type chosenRec struct {
	driver int32 // compact driver
	off, n int32 // slots in the owning worker's chosenSlots
	value  float64
}

type compResult struct {
	objective float64 // left-assoc over the comp's drivers ascending
	ub        float64
	exact     bool
	nodes     int
	worker    int
	firstRec  int
	nRecs     int
	lpSolved  int
	lpFixed   int
	warmKept  int
	warmDrop  int
}

type dfsFrame struct {
	slot int32
	k    int32 // next successor-arc cursor
	acc  float64
}

type sparseScratch struct {
	id int

	// enumeration (per component)
	frames     []dfsFrame
	paths      []pathRec
	pathSlots  []int32
	drvPathPtr []int32

	// branch and bound (per component)
	suffix             []float64
	choice, bestChoice []int32
	used               []bool // sized M, all-false invariant between uses
	bb                 bbState

	// per-driver DP (sized NSlots)
	cur   []float64
	prevS []int32

	// greedy incumbent (per component)
	dead   []bool // sized M, all-false invariant
	gOff   []int32
	gLen   []int32
	gVal   []float64
	gDone  []bool
	gSlots []int32

	// warm incumbent (per component)
	wOff   []int32
	wLen   []int32
	wVal   []float64
	wSlots []int32

	// Lagrangian fallback
	lambda []float64 // sized M, comp rows reset before use
	grad   []int     // sized M, comp rows reset before use

	// LP root
	lps      lp.Solver
	warmCols []int
	drop     []bool
	taskRow  []int32 // sized M, comp rows reset before use

	// chosen output, persists across this worker's components
	chosenSlots []int32
	chosenRecs  []chosenRec
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]float64, n-cap(s))...)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]int32, n-cap(s))...)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]int, n-cap(s))...)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]bool, n-cap(s))...)
	}
	return s[:n]
}

func growFrames(s []dfsFrame, n int) []dfsFrame {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]dfsFrame, n-cap(s))...)
	}
	return s[:n]
}

// Solve computes the hindsight optimum of the compiled instance.
func (s *SparseSolver) Solve(in *offline.Instance, opt SparseOptions) (SparseSolution, error) {
	if in == nil {
		return SparseSolution{}, fmt.Errorf("bound: nil instance")
	}
	if opt.PathCap <= 0 {
		opt.PathCap = 5000
	}
	if opt.CompPathCap <= 0 {
		opt.CompPathCap = 200000
	}
	if opt.LPMaxRows <= 0 {
		opt.LPMaxRows = 256
	}
	if opt.LPMaxCols <= 0 {
		opt.LPMaxCols = 2048
	}
	if opt.LagIters <= 0 {
		opt.LagIters = 60
	}
	if opt.NodeCap <= 0 {
		opt.NodeCap = 5_000_000
	}
	s.optBuf = opt
	optp := &s.optBuf

	ncomp := in.NComp
	workers := opt.Workers
	if workers > ncomp {
		workers = ncomp
	}
	if workers < 2 {
		workers = 1
	}
	if cap(s.scratch) < workers {
		s.scratch = append(s.scratch[:cap(s.scratch)], make([]sparseScratch, workers-cap(s.scratch))...)
	}
	s.scratch = s.scratch[:workers]
	m, nslots := len(in.Tasks), in.NSlots()
	for w := range s.scratch {
		sc := &s.scratch[w]
		sc.id = w
		sc.used = growBools(sc.used, m)
		sc.dead = growBools(sc.dead, m)
		for i := 0; i < m; i++ {
			sc.used[i] = false
			sc.dead[i] = false
		}
		sc.cur = growF64(sc.cur, nslots)
		sc.prevS = growI32(sc.prevS, nslots)
		sc.lambda = growF64(sc.lambda, m)
		sc.grad = growInts(sc.grad, m)
		sc.taskRow = growI32(sc.taskRow, m)
		sc.chosenSlots = sc.chosenSlots[:0]
		sc.chosenRecs = sc.chosenRecs[:0]
	}
	if cap(s.compRes) < ncomp {
		s.compRes = append(s.compRes[:cap(s.compRes)], make([]compResult, ncomp-cap(s.compRes))...)
	}
	s.compRes = s.compRes[:ncomp]

	if workers == 1 {
		for c := 0; c < ncomp; c++ {
			s.solveComp(in, optp, c, &s.scratch[0])
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(sc *sparseScratch) {
				defer wg.Done()
				for {
					c := int(atomic.AddInt64(&next, 1)) - 1
					if c >= ncomp {
						return
					}
					s.solveComp(in, optp, c, sc)
				}
			}(&s.scratch[w])
		}
		wg.Wait()
	}

	return s.merge(in, optp)
}

// merge folds the per-component results into the global solution in
// component order, re-accumulating the objective over compact drivers
// ascending — the same interleaving BruteForce's recursion uses.
func (s *SparseSolver) merge(in *offline.Instance, opt *SparseOptions) (SparseSolution, error) {
	m, ndrv := len(in.Tasks), in.NDrv()
	s.taskDriver = growI32(s.taskDriver, m)
	for i := 0; i < m; i++ {
		s.taskDriver[i] = -1
	}
	s.drvVal = growF64(s.drvVal, ndrv)
	s.drvHas = growBools(s.drvHas, ndrv)
	for d := 0; d < ndrv; d++ {
		s.drvHas[d] = false
	}

	sol := SparseSolution{Exact: true, Components: in.NComp, TaskDriver: s.taskDriver}
	gap := 0.0 // Σ (ub − incumbent) over inexact components
	for c := range s.compRes {
		res := &s.compRes[c]
		if !res.exact {
			gap += res.ub - res.objective
		}
		sol.Nodes += int64(res.nodes)
		sol.LPSolved += res.lpSolved
		sol.LPFixed += res.lpFixed
		sol.WarmKept += res.warmKept
		sol.WarmDropped += res.warmDrop
		if res.exact {
			sol.ExactComponents++
		} else {
			sol.Exact = false
		}
		sc := &s.scratch[res.worker]
		for r := res.firstRec; r < res.firstRec+res.nRecs; r++ {
			rec := sc.chosenRecs[r]
			s.drvVal[rec.driver] = rec.value
			s.drvHas[rec.driver] = true
			orig := int32(in.DrvID[rec.driver])
			for _, slot := range sc.chosenSlots[rec.off : rec.off+rec.n] {
				s.taskDriver[in.DrvTask[slot]] = orig
			}
		}
	}
	for d := 0; d < ndrv; d++ {
		if s.drvHas[d] {
			sol.Objective += s.drvVal[d]
		}
	}
	// The bound is the objective plus the inexact components' gaps, so
	// an all-exact solve reports UpperBound == Objective bit for bit.
	sol.UpperBound = sol.Objective + gap
	if !opt.SkipPaths {
		for d := 0; d < ndrv; d++ {
			if !s.drvHas[d] {
				continue
			}
			// Find the rec again (component of driver d).
			c := in.Comp.CompOfCol[d]
			res := &s.compRes[c]
			sc := &s.scratch[res.worker]
			for r := res.firstRec; r < res.firstRec+res.nRecs; r++ {
				rec := sc.chosenRecs[r]
				if int(rec.driver) != d {
					continue
				}
				tasks := make([]int, rec.n)
				for i, slot := range sc.chosenSlots[rec.off : rec.off+rec.n] {
					tasks[i] = int(in.DrvTask[slot])
				}
				sol.Paths = append(sol.Paths, taskmap.Path{
					Driver: in.DrvID[d], Tasks: tasks, Profit: rec.value,
				})
				break
			}
		}
	}
	return sol, nil
}
