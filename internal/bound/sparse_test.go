package bound

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

// compileFor builds the exact (TopK=0) profit instance for a generated
// event-free trace, alongside the dense taskmap it must agree with.
func compileFor(t *testing.T, seed int64, tasks, drivers int, dm trace.DriverModel) (*offline.Instance, *taskmap.Graph) {
	t.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	in, err := offline.Compile(cfg.Market, tr, offline.Options{})
	if err != nil {
		t.Fatalf("offline.Compile: %v", err)
	}
	g, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatalf("taskmap.New: %v", err)
	}
	return in, g
}

func samePaths(t *testing.T, ctx string, got, want []taskmap.Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d paths, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Driver != want[i].Driver || got[i].Profit != want[i].Profit ||
			!reflect.DeepEqual(got[i].Tasks, want[i].Tasks) {
			t.Fatalf("%s: path %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestSparseMatchesBruteForce is the differential oracle: on small
// fuzzed instances the sparse component solver must reproduce
// BruteForce bit for bit — objective, argmax paths, everything.
func TestSparseMatchesBruteForce(t *testing.T) {
	var s SparseSolver
	for seed := int64(1); seed <= 30; seed++ {
		dm := trace.Hitchhiking
		if seed%2 == 0 {
			dm = trace.HomeWorkHome
		}
		in, g := compileFor(t, seed, 8+int(seed%5), 3+int(seed%3), dm)
		want, err := BruteForce(g, 0)
		if err != nil {
			t.Fatalf("seed %d: BruteForce: %v", seed, err)
		}
		got, err := s.Solve(in, SparseOptions{})
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if !got.Exact {
			t.Fatalf("seed %d: not exact: %+v", seed, got)
		}
		if got.Objective != want.Objective {
			t.Fatalf("seed %d: objective %v, want %v", seed, got.Objective, want.Objective)
		}
		if got.UpperBound != got.Objective {
			t.Fatalf("seed %d: exact solve upper bound %v != objective %v", seed, got.UpperBound, got.Objective)
		}
		samePaths(t, "seed", got.Paths, want.Paths)
		for _, p := range want.Paths {
			for _, tk := range p.Tasks {
				if int(got.TaskDriver[tk]) != p.Driver {
					t.Fatalf("seed %d: TaskDriver[%d] = %d, want %d", seed, tk, got.TaskDriver[tk], p.Driver)
				}
			}
		}
	}
}

// TestSparseOptionInvariance sweeps warm starts, LP pruning, and worker
// counts over the same instances: none of them may change a single bit
// of the solution.
func TestSparseOptionInvariance(t *testing.T) {
	var s SparseSolver
	rng := rand.New(rand.NewSource(7))
	for seed := int64(1); seed <= 12; seed++ {
		in, g := compileFor(t, seed, 12, 4, trace.Hitchhiking)
		base, err := s.Solve(in, SparseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Warm from the true optimum, from a bogus assignment, and empty.
		opt, err := BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		warmOpt := make([][]int, len(in.Drivers))
		for _, p := range opt.Paths {
			warmOpt[p.Driver] = p.Tasks
		}
		warmJunk := make([][]int, len(in.Drivers))
		for d := range warmJunk {
			if rng.Intn(2) == 0 && len(in.Tasks) > 0 {
				warmJunk[d] = []int{rng.Intn(len(in.Tasks))}
			}
		}
		variants := []SparseOptions{
			{Workers: 2},
			{Workers: 4},
			{LP: true},
			{LP: true, Warm: warmOpt},
			{Warm: warmOpt},
			{Warm: warmJunk},
			{LP: true, Warm: warmJunk, Workers: 3},
		}
		for vi, vo := range variants {
			var s2 SparseSolver
			got, err := s2.Solve(in, vo)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, vi, err)
			}
			if got.Objective != base.Objective {
				t.Fatalf("seed %d variant %d: objective %v, want %v", seed, vi, got.Objective, base.Objective)
			}
			if !got.Exact {
				t.Fatalf("seed %d variant %d: not exact", seed, vi)
			}
			samePaths(t, "variant", got.Paths, base.Paths)
			for m := range in.Tasks {
				if got.TaskDriver[m] != base.TaskDriver[m] {
					t.Fatalf("seed %d variant %d: TaskDriver[%d] differs", seed, vi, m)
				}
			}
		}
	}
}

// TestSparseTieDegenerate builds an instance out of duplicated drivers
// and duplicated tasks, so many distinct assignments reach bitwise-
// identical totals. The solver must pick exactly the combination
// BruteForce's enumeration order picks.
func TestSparseTieDegenerate(t *testing.T) {
	market := model.DefaultMarket()
	p0 := geo.Point{Lat: 41.15, Lon: -8.61}
	p1 := geo.Point{Lat: 41.16, Lon: -8.60}
	p2 := geo.Point{Lat: 41.17, Lon: -8.59}
	var drivers []model.Driver
	for i := 0; i < 3; i++ { // three identical drivers
		drivers = append(drivers, model.Driver{ID: i + 1, Source: p0, Dest: p0, Start: 0, End: 40000})
	}
	var tasks []model.Task
	for i := 0; i < 4; i++ { // two identical copies of two tasks
		tasks = append(tasks,
			model.Task{ID: 10 + i, Publish: 0, Source: p1, Dest: p2, StartBy: 2000, EndBy: 4000, Price: 10, WTP: 12},
			model.Task{ID: 20 + i, Publish: 0, Source: p2, Dest: p1, StartBy: 4500, EndBy: 7000, Price: 10, WTP: 12})
	}
	tr := model.Trace{Drivers: drivers, Tasks: tasks}
	in, err := offline.Compile(market, tr, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskmap.New(market, drivers, tasks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var s SparseSolver
	for _, workers := range []int{1, 2, 4} {
		got, err := s.Solve(in, SparseOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective {
			t.Fatalf("workers %d: objective %v, want %v", workers, got.Objective, want.Objective)
		}
		samePaths(t, "tie", got.Paths, want.Paths)
	}
}

// TestSparseWorkerSweepIdentical checks the full-solution determinism
// promise on a bigger instance with many components.
func TestSparseWorkerSweepIdentical(t *testing.T) {
	cfg := trace.NewConfig(11, 120, 25, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(5, 0.25, 0.2))
	in, err := offline.Compile(cfg.Market, tr, offline.Options{TopK: 6})
	if err != nil {
		t.Fatal(err)
	}
	var base SparseSolution
	for i, workers := range []int{1, 2, 4} {
		var s SparseSolver
		got, err := s.Solve(in, SparseOptions{Workers: workers, LP: true})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = got
			base.TaskDriver = append([]int32(nil), got.TaskDriver...)
			continue
		}
		if got.Objective != base.Objective || got.UpperBound != base.UpperBound ||
			got.Nodes != base.Nodes || got.Exact != base.Exact {
			t.Fatalf("workers %d: (%v %v %d %v), want (%v %v %d %v)", workers,
				got.Objective, got.UpperBound, got.Nodes, got.Exact,
				base.Objective, base.UpperBound, base.Nodes, base.Exact)
		}
		samePaths(t, "sweep", got.Paths, base.Paths)
		for m := range got.TaskDriver {
			if got.TaskDriver[m] != base.TaskDriver[m] {
				t.Fatalf("workers %d: TaskDriver[%d] differs", workers, m)
			}
		}
	}
}

// TestSparseLagrangianFallback forces the enumeration cap and checks
// the inexact route stays sandwiched: incumbent ≤ BruteForce optimum ≤
// upper bound.
func TestSparseLagrangianFallback(t *testing.T) {
	in, g := compileFor(t, 9, 14, 4, trace.Hitchhiking)
	want, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var s SparseSolver
	got, err := s.Solve(in, SparseOptions{PathCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Skip("instance too small to blow a PathCap of 1")
	}
	if got.Objective > want.Objective+1e-9 {
		t.Fatalf("fallback objective %v exceeds optimum %v", got.Objective, want.Objective)
	}
	if got.UpperBound < want.Objective-1e-6*(1+want.Objective) {
		t.Fatalf("fallback upper bound %v below optimum %v", got.UpperBound, want.Objective)
	}
	if got.Objective < 0 {
		t.Fatalf("fallback objective %v negative", got.Objective)
	}
}

// TestSparseWarmAccounting feeds a valid warm assignment and a junk one
// and checks the kept/dropped counters see them.
func TestSparseWarmAccounting(t *testing.T) {
	in, g := compileFor(t, 3, 10, 3, trace.Hitchhiking)
	opt, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Paths) == 0 {
		t.Skip("seed produced an empty optimum")
	}
	warm := make([][]int, len(in.Drivers))
	for _, p := range opt.Paths {
		warm[p.Driver] = p.Tasks
	}
	var s SparseSolver
	got, err := s.Solve(in, SparseOptions{Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmKept != len(opt.Paths) {
		t.Fatalf("WarmKept = %d, want %d", got.WarmKept, len(opt.Paths))
	}
	// A warm path over a task the driver has no pair for must be dropped.
	bad := make([][]int, len(in.Drivers))
	bad[opt.Paths[0].Driver] = []int{-0 + len(in.Tasks) - 1, 0} // almost surely infeasible order
	if _, err := s.Solve(in, SparseOptions{Warm: bad}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseZeroAllocSteadyState pins the arena promise on the re-solve
// path: serial, no LP, no path materialization.
func TestSparseZeroAllocSteadyState(t *testing.T) {
	in, _ := compileFor(t, 5, 20, 5, trace.Hitchhiking)
	var s SparseSolver
	opts := SparseOptions{SkipPaths: true}
	if _, err := s.Solve(in, opts); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(30, func() {
		if _, err := s.Solve(in, opts); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Solve allocates %v per run, want 0", avg)
	}
}

func TestEnumeratePathsErrPathLimit(t *testing.T) {
	cfg := trace.NewConfig(2, 30, 2, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	g, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnumeratePaths(g, 0, 1); !errors.Is(err, ErrPathLimit) {
		t.Fatalf("err = %v, want ErrPathLimit", err)
	}
}

// BenchmarkSparseResolve measures the steady-state re-solve path the
// oracle bench exercises per density leg.
func BenchmarkSparseResolve(b *testing.B) {
	cfg := trace.NewConfig(19, 400, 80, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	in, err := offline.Compile(cfg.Market, tr, offline.Options{TopK: 8})
	if err != nil {
		b.Fatal(err)
	}
	var s SparseSolver
	opts := SparseOptions{SkipPaths: true}
	if _, err := s.Solve(in, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(in, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseSolveLP includes the LP root and path materialization.
func BenchmarkSparseSolveLP(b *testing.B) {
	cfg := trace.NewConfig(23, 400, 80, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	in, err := offline.Compile(cfg.Market, tr, offline.Options{TopK: 8})
	if err != nil {
		b.Fatal(err)
	}
	var s SparseSolver
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(in, SparseOptions{LP: true, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
