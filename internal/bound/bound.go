// Package bound computes the optimization bounds the paper's evaluation
// compares against (§III-E, §VI-B):
//
//   - Z*_f, the optimum of the LP relaxation of the node-disjoint-paths
//     formulation (9)–(10), computed *exactly* by column generation: a
//     restricted master LP over path variables plus a pricing oracle that
//     finds the maximum-reduced-profit path per driver by the task-map
//     longest-path DP. The paper obtains this value from CPLEX/MOSEK.
//   - A Lagrangian (subgradient) upper bound on Z*_f for instances too
//     large for the dense master LP: every dual-feasible λ ≥ 0 yields the
//     valid bound L(λ) = Σ_m λ_m + Σ_n max(0, bestpath_n(λ)); subgradient
//     steps shrink it toward Z*_f.
//   - Z*, the exact integral optimum, via the arc-formulation MILP
//     (Eqs. 4, 5a–5h) solved with branch-and-bound — the paper's
//     small-scale exact comparison (n ≤ 50, m ≤ 100).
//   - A brute-force exact solver for tiny instances, used to validate
//     the MILP encoding in tests.
package bound

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/taskmap"
)

// Result is an upper bound on the integral optimum Z*.
type Result struct {
	Bound  float64
	Method string
	Iters  int
}

// ColumnGeneration computes the exact LP-relaxation optimum Z*_f of the
// path formulation. It returns the bound, the final task duals λ (useful
// as a warm start for Lagrangian refinement elsewhere), and an error if
// the master LP misbehaves.
//
// Master:  max Σ r_π f_π
//
//	s.t. Σ_{π ∈ P_i} f_π ≤ 1   (driver convexity, dual μ_i)
//	     Σ_{π ∋ m}  f_π ≤ 1    (task packing,     dual λ_m)
//	     f ≥ 0
//
// Pricing for driver i: maximize r_π − Σ_{m∈π} λ_m over paths π ∈ P_i,
// i.e. the longest path under node values (p_m − ĉ_m − λ_m); a column
// with r_π − Σλ > μ_i enters. Termination with no entering column proves
// LP optimality by exact pricing.
func ColumnGeneration(g *taskmap.Graph) (Result, []float64, error) {
	n := g.N()
	m := g.M()
	if n == 0 || m == 0 {
		return Result{Bound: 0, Method: "colgen"}, make([]float64, m), nil
	}

	// Row layout: [0,n) driver rows, [n, n+m) task rows.
	master := lp.NewProblem(1) // dummy col 0 (objective 0, in no rows)
	for i := 0; i < n; i++ {
		master.AddRow(lp.LE, 1)
	}
	for j := 0; j < m; j++ {
		master.AddRow(lp.LE, 1)
	}

	type column struct {
		driver int
		tasks  []int
	}
	seen := make(map[string]bool)
	addColumn := func(p taskmap.Path) bool {
		key := pathKey(p)
		if seen[key] {
			return false
		}
		seen[key] = true
		profit, err := g.PathProfit(p.Driver, p.Tasks)
		if err != nil {
			panic(fmt.Sprintf("bound: pricing returned invalid path: %v", err))
		}
		col := master.AddVar(profit)
		master.SetCoeff(p.Driver, col, 1)
		for _, tk := range p.Tasks {
			master.SetCoeff(n+tk, col, 1)
		}
		return true
	}

	// Seed with each driver's unconstrained best path.
	for i := 0; i < n; i++ {
		if p := g.BestPath(i, nil, nil); p.Len() > 0 && p.Profit > 0 {
			addColumn(p)
		}
	}

	const (
		maxRounds = 400
		rcTol     = 1e-7
	)
	lambda := make([]float64, m)
	var lastObj float64
	for round := 0; round < maxRounds; round++ {
		sol, err := lp.Solve(master)
		if err != nil {
			return Result{}, nil, fmt.Errorf("bound: master LP: %w", err)
		}
		if sol.Status != lp.Optimal {
			return Result{}, nil, fmt.Errorf("bound: master LP status %v", sol.Status)
		}
		lastObj = sol.Objective

		for j := 0; j < m; j++ {
			lambda[j] = math.Max(0, sol.Duals[n+j])
		}
		improved := false
		for i := 0; i < n; i++ {
			mu := math.Max(0, sol.Duals[i])
			p := g.BestPath(i, nil, lambda)
			if p.Len() == 0 {
				continue
			}
			// p.Profit is r_π − Σ_{m∈π} λ_m by construction of the
			// dual-adjusted DP.
			if p.Profit > mu+rcTol {
				if addColumn(p) {
					improved = true
				}
			}
		}
		if !improved {
			return Result{Bound: lastObj, Method: "colgen", Iters: round + 1}, lambda, nil
		}
	}
	// Round limit: the master value is a lower bound on Z*_f, not an
	// upper bound; fall back to the always-valid Lagrangian value at the
	// current duals.
	lr := lagrangianValue(g, lambda)
	return Result{Bound: lr, Method: "colgen-truncated", Iters: maxRounds}, lambda, nil
}

func pathKey(p taskmap.Path) string {
	key := fmt.Sprintf("d%d:", p.Driver)
	for _, t := range p.Tasks {
		key += fmt.Sprintf("%d,", t)
	}
	return key
}

// lagrangianValue evaluates L(λ) = Σλ + Σ_i max(0, bestpath_i(λ)), a
// valid upper bound on Z*_f (hence on Z*) for any λ ≥ 0.
func lagrangianValue(g *taskmap.Graph, lambda []float64) float64 {
	v := 0.0
	for _, l := range lambda {
		v += l
	}
	for i := 0; i < g.N(); i++ {
		if p := g.BestPath(i, nil, lambda); p.Profit > 0 {
			v += p.Profit
		}
	}
	return v
}

// Lagrangian computes an upper bound on Z*_f by projected subgradient
// descent on L(λ). knownLB, if positive, enables Polyak step sizing
// (pass the greedy solution's profit); iters bounds the descent. The
// returned bound is the minimum L(λ) over all iterates and is always a
// valid upper bound on Z*, whatever the iteration count.
func Lagrangian(g *taskmap.Graph, knownLB float64, iters int) Result {
	m := g.M()
	n := g.N()
	if n == 0 || m == 0 {
		return Result{Bound: 0, Method: "lagrangian"}
	}
	if iters <= 0 {
		iters = 100
	}
	lambda := make([]float64, m)
	best := math.Inf(1)
	usage := make([]int, m)

	for k := 1; k <= iters; k++ {
		// Evaluate L(λ) and collect the subgradient.
		for j := range usage {
			usage[j] = 0
		}
		val := 0.0
		for _, l := range lambda {
			val += l
		}
		for i := 0; i < n; i++ {
			p := g.BestPath(i, nil, lambda)
			if p.Profit > 0 {
				val += p.Profit
				for _, t := range p.Tasks {
					usage[t]++
				}
			}
		}
		if val < best {
			best = val
		}

		// g_m = 1 − usage_m; step toward lower L.
		var gnorm2 float64
		for j := 0; j < m; j++ {
			gj := 1 - float64(usage[j])
			gnorm2 += gj * gj
		}
		if gnorm2 < 1e-12 {
			break // subgradient zero: λ is optimal
		}
		var step float64
		if knownLB > 0 && best > knownLB {
			step = 0.7 * (val - knownLB) / gnorm2 // Polyak
		} else {
			step = (1 + math.Abs(val)) / (gnorm2 * math.Sqrt(float64(k)))
		}
		for j := 0; j < m; j++ {
			gj := 1 - float64(usage[j])
			lambda[j] = math.Max(0, lambda[j]-step*gj)
		}
	}
	return Result{Bound: best, Method: "lagrangian", Iters: iters}
}

// Auto picks the bound computation by instance size: exact column
// generation when the master stays small, Lagrangian subgradient
// otherwise. greedyLB (the greedy profit, or 0) sharpens the Lagrangian
// step size.
func Auto(g *taskmap.Graph, greedyLB float64) Result {
	if g.N()+g.M() <= 150 {
		r, _, err := ColumnGeneration(g)
		if err == nil {
			return r
		}
		// Fall through to the robust bound on solver trouble.
	}
	return Lagrangian(g, greedyLB, 120)
}
