package bound

import (
	"math"
	"testing"

	"repro/internal/offline"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

func buildGraph(t *testing.T, seed int64, tasks, drivers int, dm trace.DriverModel) *taskmap.Graph {
	t.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	g, err := taskmap.New(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatalf("taskmap.New: %v", err)
	}
	return g
}

func TestColumnGenerationDominatesExact(t *testing.T) {
	// Z*_f ≥ Z* on every instance (LP relaxation bound).
	for seed := int64(0); seed < 5; seed++ {
		g := buildGraph(t, seed, 12, 3, trace.Hitchhiking)
		cg, _, err := ColumnGeneration(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exact, err := BruteForce(g, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cg.Bound < exact.Objective-1e-6 {
			t.Errorf("seed %d: Z*_f = %.6f below Z* = %.6f", seed, cg.Bound, exact.Objective)
		}
	}
}

func TestColumnGenerationTightWhenLPIntegral(t *testing.T) {
	// With a single driver the path polytope is integral: Z*_f == Z*.
	for seed := int64(0); seed < 5; seed++ {
		g := buildGraph(t, seed, 10, 1, trace.Hitchhiking)
		cg, _, err := ColumnGeneration(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := g.BestPath(0, nil, nil)
		want := math.Max(0, best.Profit)
		if math.Abs(cg.Bound-want) > 1e-6 {
			t.Errorf("seed %d: single-driver Z*_f = %.6f, best path = %.6f", seed, cg.Bound, want)
		}
	}
}

func TestColumnGenerationReturnsNonNegativeDuals(t *testing.T) {
	g := buildGraph(t, 2, 20, 4, trace.Hitchhiking)
	_, lambda, err := ColumnGeneration(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(lambda) != g.M() {
		t.Fatalf("lambda length %d, want %d", len(lambda), g.M())
	}
	for j, l := range lambda {
		if l < 0 {
			t.Fatalf("λ[%d] = %g < 0", j, l)
		}
	}
}

func TestColumnGenerationEmptyInstance(t *testing.T) {
	g := buildGraph(t, 1, 5, 0, trace.Hitchhiking)
	r, _, err := ColumnGeneration(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != 0 {
		t.Fatalf("bound %g for empty instance, want 0", r.Bound)
	}
}

func TestLagrangianDominatesColumnGeneration(t *testing.T) {
	// L(λ) ≥ Z*_f for every λ, so the subgradient bound can never fall
	// below the exact LP optimum.
	for seed := int64(0); seed < 4; seed++ {
		g := buildGraph(t, seed, 25, 5, trace.Hitchhiking)
		cg, _, err := ColumnGeneration(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		greedy := offline.Greedy(g).TotalProfit
		lag := Lagrangian(g, greedy, 150)
		if lag.Bound < cg.Bound-1e-6 {
			t.Errorf("seed %d: Lagrangian %.6f below Z*_f %.6f", seed, lag.Bound, cg.Bound)
		}
		// And it should be reasonably tight.
		if cg.Bound > 0 && lag.Bound > cg.Bound*1.25 {
			t.Errorf("seed %d: Lagrangian %.6f loose vs Z*_f %.6f", seed, lag.Bound, cg.Bound)
		}
	}
}

func TestLagrangianDominatesGreedy(t *testing.T) {
	g := buildGraph(t, 8, 60, 12, trace.HomeWorkHome)
	greedy := offline.Greedy(g).TotalProfit
	lag := Lagrangian(g, greedy, 80)
	if lag.Bound < greedy-1e-6 {
		t.Fatalf("upper bound %.6f below feasible profit %.6f", lag.Bound, greedy)
	}
}

func TestLagrangianMonotoneInIterations(t *testing.T) {
	// More iterations can only improve (lower) the best bound seen.
	g := buildGraph(t, 14, 40, 8, trace.Hitchhiking)
	lb := offline.Greedy(g).TotalProfit
	b1 := Lagrangian(g, lb, 5)
	b2 := Lagrangian(g, lb, 100)
	if b2.Bound > b1.Bound+1e-9 {
		t.Fatalf("100-iter bound %.6f worse than 5-iter bound %.6f", b2.Bound, b1.Bound)
	}
}

func TestAutoSelectsMethodBySize(t *testing.T) {
	small := buildGraph(t, 1, 15, 3, trace.Hitchhiking)
	if r := Auto(small, 0); r.Method != "colgen" {
		t.Errorf("small instance used %q, want colgen", r.Method)
	}
	big := buildGraph(t, 1, 200, 30, trace.Hitchhiking)
	if r := Auto(big, 10); r.Method != "lagrangian" {
		t.Errorf("large instance used %q, want lagrangian", r.Method)
	}
}

func TestExactMILPMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := buildGraph(t, seed, 8, 3, trace.Hitchhiking)
		milp, err := ExactMILP(g, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		brute, err := BruteForce(g, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(milp.Objective-brute.Objective) > 1e-5 {
			t.Errorf("seed %d: MILP %.6f != brute force %.6f", seed, milp.Objective, brute.Objective)
		}
		if milp.RootBound < milp.Objective-1e-6 {
			t.Errorf("seed %d: root bound %.6f below optimum %.6f", seed, milp.RootBound, milp.Objective)
		}
	}
}

func TestExactMILPPathsAreValid(t *testing.T) {
	g := buildGraph(t, 3, 8, 3, trace.Hitchhiking)
	milp, err := ExactMILP(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	seen := make(map[int]bool)
	for _, p := range milp.Paths {
		profit, err := g.PathProfit(p.Driver, p.Tasks)
		if err != nil {
			t.Fatalf("driver %d: %v", p.Driver, err)
		}
		if math.Abs(profit-p.Profit) > 1e-6 {
			t.Fatalf("driver %d: profit mismatch %.6f vs %.6f", p.Driver, profit, p.Profit)
		}
		for _, task := range p.Tasks {
			if seen[task] {
				t.Fatalf("task %d assigned twice", task)
			}
			seen[task] = true
		}
		total += profit
	}
	if math.Abs(total-milp.Objective) > 1e-5 {
		t.Fatalf("paths sum to %.6f, objective %.6f", total, milp.Objective)
	}
}

func TestGreedySandwichedByBounds(t *testing.T) {
	// Z* ≥ greedy and Z*_f ≥ Z*: the full ordering on one instance.
	g := buildGraph(t, 6, 10, 3, trace.HomeWorkHome)
	greedy := offline.Greedy(g).TotalProfit
	exact, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cg, _, err := ColumnGeneration(g)
	if err != nil {
		t.Fatal(err)
	}
	if greedy > exact.Objective+1e-6 {
		t.Errorf("greedy %.6f > Z* %.6f", greedy, exact.Objective)
	}
	if exact.Objective > cg.Bound+1e-6 {
		t.Errorf("Z* %.6f > Z*_f %.6f", exact.Objective, cg.Bound)
	}
}

func TestEnumeratePathsRespectsCap(t *testing.T) {
	g := buildGraph(t, 2, 30, 2, trace.Hitchhiking)
	if _, err := EnumeratePaths(g, 0, 1); err == nil {
		t.Skip("instance too sparse to exceed a 1-path cap") // acceptable
	}
}

func TestBruteForcePathsDisjoint(t *testing.T) {
	g := buildGraph(t, 4, 9, 3, trace.Hitchhiking)
	exact, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, p := range exact.Paths {
		for _, task := range p.Tasks {
			if seen[task] {
				t.Fatalf("task %d on two optimal paths", task)
			}
			seen[task] = true
		}
		if p.Profit <= 0 {
			t.Fatalf("optimal solution contains non-positive path %.6f", p.Profit)
		}
	}
}
