package roadnet

import (
	"math"
	"sync"
)

// This file implements contraction hierarchies (Geisberger et al.): a
// preprocessing pass contracts nodes one by one in edge-difference
// order, inserting shortcut arcs that preserve shortest-path distances
// among the remaining nodes, and queries become two small *upward*
// Dijkstra searches — forward from the source and backward from the
// target, both only ever climbing toward higher-ranked nodes — that
// meet at the highest node of some shortest path. The upward search
// spaces are tiny compared to plain Dijkstra's, which is what replaces
// the per-pair ALT A* in Router.nodeDist, and the structure batches
// naturally: one-to-many queries share one half of the search (the
// shared endpoint's full upward cone doubles as the bucket array the
// per-target searches scan), so an order's distances to all its
// candidate drivers cost one search plus a small probe per driver.
//
// On small graphs (see chLabelMaxNodes) preprocessing goes one step
// further and freezes every node's upward cones into hub labels — the
// canonical CH-derived labeling — so a query degenerates to scanning
// two short arrays for their cheapest common hub: no heap, no
// relaxation, no per-query allocation. The bidirectional search kernel
// remains both the fallback for large graphs and the machine that
// builds the labels.
//
// Bit-identity discipline: the rest of the repository asserts that
// every routing kernel returns distances bitwise equal to Dijkstra's.
// Dijkstra accumulates edge weights left-associatively in path order
// (dist[v] = dist[u] + w), while a CH search sums shortcut weights —
// the same magnitudes grouped differently, which IEEE float addition
// does not forgive. Queries therefore never return the search's own
// sum: they unpack the winning up-down path's shortcuts back to the
// original edge sequence and re-accumulate the edge weights in path
// order, reproducing Dijkstra's float operations exactly (for unique
// shortest paths, which the generators' jittered weights make the only
// realistic case — the same assumption the ALT differential tests
// already rely on). The CH weights only steer the search.

// chArc is one arc of the contracted graph: every original directed
// edge plus every shortcut. Shortcuts remember the two arcs they
// replaced (left: from→mid, right: mid→to) so unpacking is a walk down
// a binary tree whose leaves are original edges.
type chArc struct {
	from, to    int32
	km          float64
	left, right int32 // child arc indices; -1/-1 on original edges
}

// chRef is one adjacency entry of the upward search graphs.
type chRef struct {
	node int32
	arc  int32
	km   float64
}

// Hierarchy is the preprocessed contraction hierarchy for one graph.
// Build with BuildHierarchy; queries are safe for concurrent use (each
// borrows scratch from an internal pool).
type Hierarchy struct {
	n         int
	rank      []int32 // node -> contraction order (0 = contracted first)
	arcs      []chArc
	shortcuts int

	// Upward adjacency in CSR layout (offset + flat ref arrays), so the
	// query inner loops scan contiguous memory instead of chasing
	// per-node slice headers: fwd holds arcs u→w with rank[w] > rank[u]
	// keyed by u; bwd holds arcs u→w with rank[u] > rank[w] keyed by w.
	fwdOff, bwdOff []int32
	fwdRef, bwdRef []chRef

	// Hub labels (small graphs only; see chLabelMaxNodes): a node's
	// forward label is its entire upward cone — every hub it can climb
	// to, with the CH weight and the search-tree parent entry, so the
	// winning up-down path unpacks without re-running any search.
	// CSR layout again; entries sit in settle order, which guarantees a
	// parent entry always precedes its children within one label.
	labOffF, labOffB []int32
	labF, labB       []labEntry

	pool sync.Pool // *chScratch
}

// labEntry is one hub of a node's label. parent chains entries within
// the same label (-1 at the label's own node); arc is the CH arc from
// the parent hub into this hub (forward labels) or out of it (backward
// labels), -1 at the root.
type labEntry struct {
	dist   float64
	hub    int32
	parent int32
	arc    int32
}

// labeled reports whether the hub-label tier was built.
func (h *Hierarchy) labeled() bool { return h.labOffF != nil }

func (h *Hierarchy) labFAt(x int32) []labEntry { return h.labF[h.labOffF[x]:h.labOffF[x+1]] }
func (h *Hierarchy) labBAt(x int32) []labEntry { return h.labB[h.labOffB[x]:h.labOffB[x+1]] }

// fwdAt / bwdAt return a node's upward adjacency slice.
func (h *Hierarchy) fwdAt(x int32) []chRef { return h.fwdRef[h.fwdOff[x]:h.fwdOff[x+1]] }
func (h *Hierarchy) bwdAt(x int32) []chRef { return h.bwdRef[h.bwdOff[x]:h.bwdOff[x+1]] }

// witnessSettleCap bounds each witness search during preprocessing. An
// inconclusive search just inserts a (possibly redundant) shortcut,
// which costs query time but never correctness, so the cap only trades
// preprocessing speed against hierarchy sparsity.
const witnessSettleCap = 256

// chLabelMaxNodes gates the hub-label tier: below this node count,
// preprocessing additionally runs every node's upward searches to
// exhaustion and stores the settled cones as labels, turning queries
// into array scans with no heap at all. Label storage is the sum of all
// cone sizes — about O(n·√n) on grid-like graphs — so the tier is
// limited to graphs where that stays in the tens of megabytes; larger
// graphs fall back to the bidirectional search kernel.
const chLabelMaxNodes = 4096

// chHeapItem / chHeap implement the searches' priority queue without
// container/heap's interface boxing. Ties break on node id so every
// search settles nodes in a deterministic order.
type chHeapItem struct {
	dist float64
	node int32
}

type chHeap []chHeapItem

func chLess(a, b chHeapItem) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.node < b.node)
}

func (h *chHeap) push(it chHeapItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !chLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *chHeap) pop() chHeapItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && chLess(q[l], q[small]) {
			small = l
		}
		if r < n && chLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// chBuilder is the mutable preprocessing state: the "core" graph of
// not-yet-contracted nodes, maintained as in/out lists of arc indices
// (stale entries pointing at contracted endpoints are skipped lazily).
type chBuilder struct {
	arcs       []chArc
	out, in    [][]int32 // node -> arc indices (u→·) / (·→w)
	contracted []bool
	deleted    []int32 // contracted-neighbor count, for priorities
	level      []int32 // hop-depth bound: 1 + max level of contracted neighbors

	// witness-search scratch (epoch-stamped so clears are O(touched))
	wdist []float64
	wlab  []uint32
	wdone []uint32
	wep   uint32
	wheap chHeap

	// neighbor-dedup scratch for the deleted-neighbor update
	nbSeen []uint32
	nbEp   uint32
}

// BuildHierarchy preprocesses g into a contraction hierarchy. The pass
// is deterministic: priorities are integers, every tie breaks on node
// id, and arc insertion order is fixed, so two builds of the same graph
// produce identical hierarchies.
func BuildHierarchy(g *Graph) *Hierarchy {
	n := g.NumNodes()
	b := &chBuilder{
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		contracted: make([]bool, n),
		deleted:    make([]int32, n),
		level:      make([]int32, n),
		wdist:      make([]float64, n),
		wlab:       make([]uint32, n),
		wdone:      make([]uint32, n),
		nbSeen:     make([]uint32, n),
	}
	for u := 0; u < n; u++ {
		for _, e := range g.adj[u] {
			idx := int32(len(b.arcs))
			b.arcs = append(b.arcs, chArc{from: int32(u), to: e.to, km: e.km, left: -1, right: -1})
			b.out[u] = append(b.out[u], idx)
			b.in[e.to] = append(b.in[e.to], idx)
		}
	}

	// Lazy edge-difference ordering: pop the cheapest node, recompute
	// its priority (contractions elsewhere may have changed it), and
	// contract only if it still beats the queue's next candidate.
	var q chHeap
	for v := int32(0); v < int32(n); v++ {
		sc, rm := b.contract(v, false)
		q.push(chHeapItem{dist: b.priority(v, sc, rm), node: v})
	}
	h := &Hierarchy{n: n, rank: make([]int32, n), shortcuts: 0}
	order := int32(0)
	for len(q) > 0 {
		it := q.pop()
		v := it.node
		if b.contracted[v] {
			continue // stale duplicate entry
		}
		sc, rm := b.contract(v, false)
		prio := b.priority(v, sc, rm)
		if len(q) > 0 && prio > q[0].dist {
			q.push(chHeapItem{dist: prio, node: v})
			continue
		}
		added, _ := b.contract(v, true)
		h.shortcuts += added
		b.markContracted(v)
		h.rank[v] = order
		order++
	}

	h.arcs = b.arcs
	// Two counting passes build the CSR adjacency with refs in arc-index
	// order per node (deterministic, same order appends would give).
	h.fwdOff = make([]int32, n+1)
	h.bwdOff = make([]int32, n+1)
	for idx := range h.arcs {
		a := &h.arcs[idx]
		if h.rank[a.from] < h.rank[a.to] {
			h.fwdOff[a.from+1]++
		} else {
			h.bwdOff[a.to+1]++
		}
	}
	for i := 0; i < n; i++ {
		h.fwdOff[i+1] += h.fwdOff[i]
		h.bwdOff[i+1] += h.bwdOff[i]
	}
	h.fwdRef = make([]chRef, h.fwdOff[n])
	h.bwdRef = make([]chRef, h.bwdOff[n])
	fNext := make([]int32, n)
	bNext := make([]int32, n)
	for idx := range h.arcs {
		a := &h.arcs[idx]
		ref := chRef{arc: int32(idx), km: a.km}
		if h.rank[a.from] < h.rank[a.to] {
			ref.node = a.to
			h.fwdRef[h.fwdOff[a.from]+fNext[a.from]] = ref
			fNext[a.from]++
		} else {
			ref.node = a.from
			h.bwdRef[h.bwdOff[a.to]+bNext[a.to]] = ref
			bNext[a.to]++
		}
	}
	h.pool.New = func() any { return newCHScratch(n) }
	h.buildLabels()
	return h
}

// buildLabels runs every node's forward and backward upward searches to
// exhaustion and freezes the settled cones as hub labels (small graphs
// only; see chLabelMaxNodes). With labels, a point-to-point query is a
// scan over two short arrays — no heap, no relaxation — and the stored
// parent chains reproduce exactly the search trees the live searches
// would have built, so unpacking stays bitwise-identical to Dijkstra.
func (h *Hierarchy) buildLabels() {
	if h.n == 0 || h.n > chLabelMaxNodes {
		return
	}
	sc := newCHScratch(h.n)
	pos := make([]int32, h.n) // node -> entry index within the current label
	h.labOffF = make([]int32, 1, h.n+1)
	h.labOffB = make([]int32, 1, h.n+1)
	for u := int32(0); u < int32(h.n); u++ {
		h.forward(sc, u)
		for i, x := range sc.setF {
			pos[x] = int32(i)
			e := labEntry{dist: sc.distF[x], hub: x, parent: -1, arc: sc.parF[x]}
			if e.arc >= 0 {
				e.parent = pos[h.arcs[e.arc].from]
			}
			h.labF = append(h.labF, e)
		}
		h.labOffF = append(h.labOffF, int32(len(h.labF)))

		h.backward(sc, u)
		for i, x := range sc.setB {
			pos[x] = int32(i)
			e := labEntry{dist: sc.distB[x], hub: x, parent: -1, arc: sc.parB[x]}
			if e.arc >= 0 {
				e.parent = pos[h.arcs[e.arc].to]
			}
			h.labB = append(h.labB, e)
		}
		h.labOffB = append(h.labOffB, int32(len(h.labB)))
	}
}

// NumShortcuts returns the number of shortcut arcs the preprocessing
// inserted (for stats, benches and tests).
func (h *Hierarchy) NumShortcuts() int { return h.shortcuts }

// Rank returns node id's contraction order (for determinism tests).
func (h *Hierarchy) Rank(id int) int { return int(h.rank[id]) }

// priority scores node v for the contraction order: the edge
// difference (shortcuts added minus arcs removed) dominates, with
// contracted-neighbor and hop-depth terms spreading contraction evenly
// across the graph — the depth term is what keeps upward search cones
// shallow, and with it query search spaces stay near-logarithmic.
func (b *chBuilder) priority(v int32, shortcuts, removed int) float64 {
	// The integer terms produce huge tie groups (every interior grid
	// node starts identical), and breaking ties by node id would
	// contract spatially sequential waves of adjacent nodes — long
	// shortcut chains, deep hierarchies, linear-size query cones. A
	// sub-integer hash jitter keeps the order deterministic while
	// scattering each tie group uniformly across the graph.
	jitter := float64(uint32(v)*2654435761) * (1.0 / (1 << 40))
	return float64(2*(shortcuts-removed)) + float64(b.deleted[v]) + float64(b.level[v]) + jitter
}

// contract simulates (apply=false) or performs (apply=true) the
// contraction of v: for every in-neighbor u and out-neighbor w still in
// the core, a shortcut u→w of weight km(u→v)+km(v→w) is needed unless a
// witness path of at most that weight avoids v. It returns the number
// of shortcuts needed/added and the number of core arcs contraction
// removes (the edge-difference terms).
func (b *chBuilder) contract(v int32, apply bool) (shortcuts, removed int) {
	for _, ai := range b.in[v] {
		if b.contracted[b.arcs[ai].from] {
			continue
		}
		removed++
	}
	for _, ai := range b.out[v] {
		if b.contracted[b.arcs[ai].to] {
			continue
		}
		removed++
	}
	for _, ai := range b.in[v] {
		u := b.arcs[ai].from
		if b.contracted[u] {
			continue
		}
		inKm := b.arcs[ai].km
		// Bound the witness search by the largest shortcut this u would
		// need; paths longer than that can never refute one.
		maxKm := -1.0
		for _, ao := range b.out[v] {
			w := b.arcs[ao].to
			if b.contracted[w] || w == u {
				continue
			}
			if d := inKm + b.arcs[ao].km; d > maxKm {
				maxKm = d
			}
		}
		if maxKm < 0 {
			continue // no out-neighbor other than u survives
		}
		b.witnessSearch(u, v, maxKm)
		for _, ao := range b.out[v] {
			w := b.arcs[ao].to
			if b.contracted[w] || w == u {
				continue
			}
			need := inKm + b.arcs[ao].km
			if b.wdone[w] == b.wep && b.wdist[w] <= need {
				continue // witness avoids v at no extra cost
			}
			shortcuts++
			if apply {
				idx := int32(len(b.arcs))
				b.arcs = append(b.arcs, chArc{from: u, to: w, km: need, left: ai, right: ao})
				b.out[u] = append(b.out[u], idx)
				b.in[w] = append(b.in[w], idx)
			}
		}
	}
	return shortcuts, removed
}

// witnessSearch runs a bounded Dijkstra from u over the core graph with
// v removed. Settled distances land in b.wdist under epoch b.wep; the
// search stops once the frontier exceeds maxKm or the settle cap.
func (b *chBuilder) witnessSearch(u, v int32, maxKm float64) {
	b.wep++
	b.wheap = b.wheap[:0]
	b.wdist[u] = 0
	b.wlab[u] = b.wep
	b.wheap.push(chHeapItem{dist: 0, node: u})
	settled := 0
	for len(b.wheap) > 0 {
		it := b.wheap.pop()
		x := it.node
		if b.wdone[x] == b.wep {
			continue
		}
		if b.wdist[x] > maxKm {
			break
		}
		b.wdone[x] = b.wep
		if settled++; settled > witnessSettleCap {
			break
		}
		for _, ai := range b.out[x] {
			a := &b.arcs[ai]
			if a.to == v || b.contracted[a.to] {
				continue
			}
			nd := b.wdist[x] + a.km
			if b.wlab[a.to] != b.wep || nd < b.wdist[a.to] {
				b.wlab[a.to] = b.wep
				b.wdist[a.to] = nd
				b.wheap.push(chHeapItem{dist: nd, node: a.to})
			}
		}
	}
}

// markContracted retires v from the core and bumps the deleted-neighbor
// counter of every surviving neighbor (each unique neighbor once).
func (b *chBuilder) markContracted(v int32) {
	b.contracted[v] = true
	b.nbEp++
	bump := func(n int32) {
		if !b.contracted[n] && b.nbSeen[n] != b.nbEp {
			b.nbSeen[n] = b.nbEp
			b.deleted[n]++
			if b.level[n] < b.level[v]+1 {
				b.level[n] = b.level[v] + 1
			}
		}
	}
	for _, ai := range b.in[v] {
		bump(b.arcs[ai].from)
	}
	for _, ai := range b.out[v] {
		bump(b.arcs[ai].to)
	}
}

// chScratch is one query's working set: epoch-stamped distance/parent
// arrays and a heap for each of the forward and backward upward
// searches, plus the unpacking buffers. Borrowed from the hierarchy's
// pool so concurrent queries never share state.
type chScratch struct {
	distF, distB []float64
	parF, parB   []int32
	labF, labB   []uint32
	doneF, doneB []uint32
	epF, epB     uint32
	heapF, heapB chHeap
	setF, setB   []int32 // settle order of the last exhaustive search
	srcF, srcB   int32   // label-mode batch anchors (see prepareF/prepareB)
	chain        []int32 // parent-walk buffer (arc indices)
	stack        []int32 // shortcut-expansion stack
}

func newCHScratch(n int) *chScratch {
	return &chScratch{
		distF: make([]float64, n), distB: make([]float64, n),
		parF: make([]int32, n), parB: make([]int32, n),
		labF: make([]uint32, n), labB: make([]uint32, n),
		doneF: make([]uint32, n), doneB: make([]uint32, n),
	}
}

func (h *Hierarchy) scratch() *chScratch { return h.pool.Get().(*chScratch) }

// forward runs the upward search from u to exhaustion, recording
// distance and parent arc for every settled node. The settled set is
// the "bucket" side of one-to-many batches: probeBackward scans it by
// array lookup.
func (h *Hierarchy) forward(sc *chScratch, u int32) {
	sc.epF++
	sc.heapF = sc.heapF[:0]
	sc.distF[u] = 0
	sc.parF[u] = -1
	sc.labF[u] = sc.epF
	sc.heapF.push(chHeapItem{dist: 0, node: u})
	sc.setF = sc.setF[:0]
	for len(sc.heapF) > 0 {
		it := sc.heapF.pop()
		x := it.node
		if sc.doneF[x] == sc.epF {
			continue
		}
		sc.doneF[x] = sc.epF
		sc.setF = append(sc.setF, x)
		for _, e := range h.fwdAt(x) {
			nd := sc.distF[x] + e.km
			if sc.labF[e.node] != sc.epF || nd < sc.distF[e.node] {
				sc.labF[e.node] = sc.epF
				sc.distF[e.node] = nd
				sc.parF[e.node] = e.arc
				sc.heapF.push(chHeapItem{dist: nd, node: e.node})
			}
		}
	}
}

// backward is forward's mirror: the upward search from v over the
// reverse graph, i.e. distB[x] = CH weight of the best down-path x→v.
func (h *Hierarchy) backward(sc *chScratch, v int32) {
	sc.epB++
	sc.heapB = sc.heapB[:0]
	sc.distB[v] = 0
	sc.parB[v] = -1
	sc.labB[v] = sc.epB
	sc.heapB.push(chHeapItem{dist: 0, node: v})
	sc.setB = sc.setB[:0]
	for len(sc.heapB) > 0 {
		it := sc.heapB.pop()
		x := it.node
		if sc.doneB[x] == sc.epB {
			continue
		}
		sc.doneB[x] = sc.epB
		sc.setB = append(sc.setB, x)
		for _, e := range h.bwdAt(x) {
			nd := sc.distB[x] + e.km
			if sc.labB[e.node] != sc.epB || nd < sc.distB[e.node] {
				sc.labB[e.node] = sc.epB
				sc.distB[e.node] = nd
				sc.parB[e.node] = e.arc
				sc.heapB.push(chHeapItem{dist: nd, node: e.node})
			}
		}
	}
}

// probeBackward runs the backward upward search from v against a
// prepared forward search (see forward), returning the unpacked,
// re-accumulated distance of the best meeting path — bitwise equal to
// Dijkstra from the forward search's source to v — or +Inf when the
// cones never meet (v unreachable).
func (h *Hierarchy) probeBackward(sc *chScratch, v int32) float64 {
	sc.epB++
	sc.heapB = sc.heapB[:0]
	best := math.Inf(1)
	meet := int32(-1)
	sc.distB[v] = 0
	sc.parB[v] = -1
	sc.labB[v] = sc.epB
	sc.heapB.push(chHeapItem{dist: 0, node: v})
	for len(sc.heapB) > 0 {
		it := sc.heapB.pop()
		x := it.node
		if sc.doneB[x] == sc.epB {
			continue
		}
		sc.doneB[x] = sc.epB
		if sc.distB[x] >= best {
			break // keys only grow; no later meet can improve
		}
		if sc.doneF[x] == sc.epF {
			if cand := sc.distF[x] + sc.distB[x]; cand < best {
				best = cand
				meet = x
			}
		}
		for _, e := range h.bwdAt(x) {
			nd := sc.distB[x] + e.km
			if sc.labB[e.node] != sc.epB || nd < sc.distB[e.node] {
				sc.labB[e.node] = sc.epB
				sc.distB[e.node] = nd
				sc.parB[e.node] = e.arc
				sc.heapB.push(chHeapItem{dist: nd, node: e.node})
			}
		}
	}
	if meet < 0 {
		return math.Inf(1)
	}
	return h.unpack(sc, meet)
}

// probeForward is probeBackward's mirror for many-to-one batches: a
// forward upward search from u against a prepared backward search,
// returning the unpacked distance u → (backward source).
func (h *Hierarchy) probeForward(sc *chScratch, u int32) float64 {
	sc.epF++
	sc.heapF = sc.heapF[:0]
	best := math.Inf(1)
	meet := int32(-1)
	sc.distF[u] = 0
	sc.parF[u] = -1
	sc.labF[u] = sc.epF
	sc.heapF.push(chHeapItem{dist: 0, node: u})
	for len(sc.heapF) > 0 {
		it := sc.heapF.pop()
		x := it.node
		if sc.doneF[x] == sc.epF {
			continue
		}
		sc.doneF[x] = sc.epF
		if sc.distF[x] >= best {
			break
		}
		if sc.doneB[x] == sc.epB {
			if cand := sc.distF[x] + sc.distB[x]; cand < best {
				best = cand
				meet = x
			}
		}
		for _, e := range h.fwdAt(x) {
			nd := sc.distF[x] + e.km
			if sc.labF[e.node] != sc.epF || nd < sc.distF[e.node] {
				sc.labF[e.node] = sc.epF
				sc.distF[e.node] = nd
				sc.parF[e.node] = e.arc
				sc.heapF.push(chHeapItem{dist: nd, node: e.node})
			}
		}
	}
	if meet < 0 {
		return math.Inf(1)
	}
	return h.unpack(sc, meet)
}

// unpack walks the winning up-down path through meet, expands every
// shortcut to its original edges, and re-accumulates the edge weights
// left-associatively in path order — the float operations Dijkstra
// itself would have performed along this path.
func (h *Hierarchy) unpack(sc *chScratch, meet int32) float64 {
	// Forward half: the parent walk discovers arcs tip-first, so stage
	// them and fold in reverse (source → meet order).
	sc.chain = sc.chain[:0]
	for a := sc.parF[meet]; a >= 0; a = sc.parF[h.arcs[a].from] {
		sc.chain = append(sc.chain, a)
	}
	d := 0.0
	for i := len(sc.chain) - 1; i >= 0; i-- {
		d = h.foldArc(sc, sc.chain[i], d)
	}
	// Backward half: the parent walk already runs meet → target.
	for a := sc.parB[meet]; a >= 0; a = sc.parB[h.arcs[a].to] {
		d = h.foldArc(sc, a, d)
	}
	return d
}

// foldArc adds arc a's original edge weights to the running sum in path
// order, expanding shortcuts depth-first (left child before right).
func (h *Hierarchy) foldArc(sc *chScratch, a int32, d float64) float64 {
	sc.stack = append(sc.stack[:0], a)
	for len(sc.stack) > 0 {
		top := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		arc := &h.arcs[top]
		if arc.left < 0 {
			d += arc.km
		} else {
			sc.stack = append(sc.stack, arc.right, arc.left) // left pops first
		}
	}
	return d
}

// Query returns the shortest-path distance from u to v, bitwise equal
// to Graph.ShortestPath's. Safe for concurrent use. With the hub-label
// tier built this is two array scans; otherwise the bidirectional
// search kernel runs.
func (h *Hierarchy) Query(u, v int) float64 {
	if u == v {
		return 0
	}
	sc := h.scratch()
	var d float64
	if h.labeled() {
		h.stampForwardLabel(sc, int32(u))
		d = h.probeBackwardLabel(sc, int32(v))
	} else {
		d = h.queryPTP(sc, int32(u), int32(v))
	}
	h.pool.Put(sc)
	return d
}

// stampForwardLabel loads u's forward label into the scratch arrays
// under a fresh epoch: distF holds the hub weight, parF the entry index
// (for unpacking). One stamp serves any number of probeBackwardLabel
// calls, which is what makes label-mode one-to-many batches a stamp
// plus one scan per target.
func (h *Hierarchy) stampForwardLabel(sc *chScratch, u int32) {
	sc.epF++
	sc.srcF = u
	lu := h.labFAt(u)
	for i := range lu {
		e := &lu[i]
		sc.labF[e.hub] = sc.epF
		sc.distF[e.hub] = e.dist
		sc.parF[e.hub] = int32(i)
	}
}

// probeBackwardLabel scans v's backward label against the stamped
// forward label, picks the cheapest common hub (first wins on exact
// ties, so the scan order itself is the deterministic tie-break), and
// unpacks the winning chains. Returns +Inf when the labels share no
// hub (v unreachable from the stamped source).
func (h *Hierarchy) probeBackwardLabel(sc *chScratch, v int32) float64 {
	lv := h.labBAt(v)
	best := math.Inf(1)
	bi, bj := int32(-1), int32(-1)
	for j := range lv {
		e := &lv[j]
		if sc.labF[e.hub] == sc.epF {
			if cand := sc.distF[e.hub] + e.dist; cand < best {
				best = cand
				bi, bj = sc.parF[e.hub], int32(j)
			}
		}
	}
	if bi < 0 {
		return math.Inf(1)
	}
	return h.unpackLabels(sc, h.labFAt(sc.srcF), lv, bi, bj)
}

// stampBackwardLabel / probeForwardLabel mirror the pair above for
// many-to-one batches (shared destination).
func (h *Hierarchy) stampBackwardLabel(sc *chScratch, v int32) {
	sc.epB++
	sc.srcB = v
	lv := h.labBAt(v)
	for i := range lv {
		e := &lv[i]
		sc.labB[e.hub] = sc.epB
		sc.distB[e.hub] = e.dist
		sc.parB[e.hub] = int32(i)
	}
}

func (h *Hierarchy) probeForwardLabel(sc *chScratch, u int32) float64 {
	lu := h.labFAt(u)
	best := math.Inf(1)
	bi, bj := int32(-1), int32(-1)
	for i := range lu {
		e := &lu[i]
		if sc.labB[e.hub] == sc.epB {
			if cand := e.dist + sc.distB[e.hub]; cand < best {
				best = cand
				bi, bj = int32(i), sc.parB[e.hub]
			}
		}
	}
	if bi < 0 {
		return math.Inf(1)
	}
	return h.unpackLabels(sc, lu, h.labBAt(sc.srcB), bi, bj)
}

// unpackLabels re-accumulates the up-down path whose halves end at
// forward entry bi and backward entry bj: the stored parent chains are
// exactly the live searches' parent walks, folded in the same path
// order, so the result matches Dijkstra bitwise (see unpack).
func (h *Hierarchy) unpackLabels(sc *chScratch, lu, lv []labEntry, bi, bj int32) float64 {
	sc.chain = sc.chain[:0]
	for e := bi; lu[e].arc >= 0; e = lu[e].parent {
		sc.chain = append(sc.chain, lu[e].arc)
	}
	d := 0.0
	for i := len(sc.chain) - 1; i >= 0; i-- {
		d = h.foldArc(sc, sc.chain[i], d)
	}
	for e := bj; lv[e].arc >= 0; e = lv[e].parent {
		d = h.foldArc(sc, lv[e].arc, d)
	}
	return d
}

// prepareForward readies scratch for a one-to-many batch anchored at
// origin node u; probeBackward answers each target. With labels the
// pair is stamp+scan, otherwise an exhaustive upward search feeds
// bucket probes.
func (h *Hierarchy) prepareForward(sc *chScratch, u int32) {
	if h.labeled() {
		h.stampForwardLabel(sc, u)
	} else {
		h.forward(sc, u)
	}
}

func (h *Hierarchy) probeTarget(sc *chScratch, v int32) float64 {
	if h.labeled() {
		return h.probeBackwardLabel(sc, v)
	}
	return h.probeBackward(sc, v)
}

// prepareBackward / probeSource mirror the pair above for many-to-one
// batches (shared destination).
func (h *Hierarchy) prepareBackward(sc *chScratch, v int32) {
	if h.labeled() {
		h.stampBackwardLabel(sc, v)
	} else {
		h.backward(sc, v)
	}
}

func (h *Hierarchy) probeSource(sc *chScratch, u int32) float64 {
	if h.labeled() {
		return h.probeForwardLabel(sc, u)
	}
	return h.probeForward(sc, u)
}

// queryPTP is the point-to-point kernel: both upward searches run
// interleaved (strictly alternating, for determinism) and each stops as
// soon as its next key cannot beat the best meeting found — unlike the
// one-to-many path, neither side runs to exhaustion. Meeting checks use
// the other side's tentative label; tentative values only overestimate,
// so best stays achievable and the optimal meet is re-checked with
// final values when its second settle lands. The winning path is
// unpacked and re-accumulated like every other query.
func (h *Hierarchy) queryPTP(sc *chScratch, u, v int32) float64 {
	sc.epF++
	sc.epB++
	sc.heapF = sc.heapF[:0]
	sc.heapB = sc.heapB[:0]
	sc.distF[u] = 0
	sc.parF[u] = -1
	sc.labF[u] = sc.epF
	sc.heapF.push(chHeapItem{dist: 0, node: u})
	sc.distB[v] = 0
	sc.parB[v] = -1
	sc.labB[v] = sc.epB
	sc.heapB.push(chHeapItem{dist: 0, node: v})
	best := math.Inf(1)
	meet := int32(-1)
	fwdTurn := true
	for len(sc.heapF) > 0 || len(sc.heapB) > 0 {
		dir := fwdTurn
		if dir && len(sc.heapF) == 0 {
			dir = false
		} else if !dir && len(sc.heapB) == 0 {
			dir = true
		}
		fwdTurn = !fwdTurn
		if dir {
			it := sc.heapF.pop()
			x := it.node
			if sc.doneF[x] == sc.epF {
				continue
			}
			if sc.distF[x] >= best {
				sc.heapF = sc.heapF[:0] // forward side exhausted
				continue
			}
			sc.doneF[x] = sc.epF
			if sc.labB[x] == sc.epB {
				if cand := sc.distF[x] + sc.distB[x]; cand < best {
					best = cand
					meet = x
				}
			}
			for _, e := range h.fwdAt(x) {
				nd := sc.distF[x] + e.km
				if sc.labF[e.node] != sc.epF || nd < sc.distF[e.node] {
					sc.labF[e.node] = sc.epF
					sc.distF[e.node] = nd
					sc.parF[e.node] = e.arc
					if nd < best { // keys ≥ best can never settle
						sc.heapF.push(chHeapItem{dist: nd, node: e.node})
					}
				}
			}
		} else {
			it := sc.heapB.pop()
			x := it.node
			if sc.doneB[x] == sc.epB {
				continue
			}
			if sc.distB[x] >= best {
				sc.heapB = sc.heapB[:0] // backward side exhausted
				continue
			}
			sc.doneB[x] = sc.epB
			if sc.labF[x] == sc.epF {
				if cand := sc.distF[x] + sc.distB[x]; cand < best {
					best = cand
					meet = x
				}
			}
			for _, e := range h.bwdAt(x) {
				nd := sc.distB[x] + e.km
				if sc.labB[e.node] != sc.epB || nd < sc.distB[e.node] {
					sc.labB[e.node] = sc.epB
					sc.distB[e.node] = nd
					sc.parB[e.node] = e.arc
					if nd < best {
						sc.heapB.push(chHeapItem{dist: nd, node: e.node})
					}
				}
			}
		}
	}
	if meet < 0 {
		return math.Inf(1)
	}
	return h.unpack(sc, meet)
}
