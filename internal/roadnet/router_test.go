package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
)

// bruteNearest is the ground truth for NearestNode: a full scan.
func bruteNearest(g *Graph, p geo.Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for id := 0; id < g.NumNodes(); id++ {
		if d := geo.Equirectangular(p, g.Point(id)); d < bestD {
			best, bestD = id, d
		}
	}
	return best, bestD
}

// TestNearestNodeRegression reconstructs the exact layout the old
// implementation got wrong: the query's cell and Moore neighborhood are
// not all empty (so the full-scan fallback never fired) but the true
// nearest intersection lies two rings out.
func TestNearestNodeRegression(t *testing.T) {
	box := geo.PortoBox
	grid := geo.NewGrid(box, 10, 10)
	p := grid.CellCenter(5*10 + 5)

	g := &Graph{}
	// Decoy in the Moore neighborhood: far corner of cell (6,6).
	decoy := g.AddNode(box.Lerp(6.95/10, 6.95/10))
	// True nearest: near edge of cell (5,7), outside the Moore ring.
	want := g.AddNode(box.Lerp(5.5/10, 7.02/10))

	r := NewRouter(g, box, 10)
	got := r.NearestNode(p)
	bf, _ := bruteNearest(g, p)
	if bf != want {
		t.Fatalf("layout broken: brute force picked %d, want %d", bf, want)
	}
	if got != want {
		t.Fatalf("NearestNode = %d (decoy=%d), want %d: expanding ring must look past a populated Moore neighborhood", got, decoy, want)
	}
}

// TestNearestNodeDifferential compares the expanding-ring search
// against brute force over random graphs: clustered node layouts (which
// leave most cells empty, the regime the old code got wrong) probed
// with uniform query points, including points outside the box.
func TestNearestNodeDifferential(t *testing.T) {
	box := geo.PortoBox
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &Graph{}
		clusters := 1 + rng.Intn(4)
		nodes := 5 + rng.Intn(60)
		centers := make([]geo.Point, clusters)
		for i := range centers {
			centers[i] = box.Lerp(rng.Float64(), rng.Float64())
		}
		for i := 0; i < nodes; i++ {
			c := centers[rng.Intn(clusters)]
			g.AddNode(box.Clamp(geo.Point{
				Lat: c.Lat + (rng.Float64()-0.5)*0.01,
				Lon: c.Lon + (rng.Float64()-0.5)*0.01,
			}))
		}
		r := NewRouter(g, box, 8+rng.Intn(16))
		for q := 0; q < 200; q++ {
			p := box.Lerp(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)
			got := r.NearestNode(p)
			_, wantD := bruteNearest(g, p)
			gotD := geo.Equirectangular(p, g.Point(got))
			if gotD > wantD {
				t.Fatalf("seed %d query %v: NearestNode returned node %d at %.6f km, brute force found %.6f km",
					seed, p, got, gotD, wantD)
			}
		}
	}
}

func TestNearestNodeEmptyGraph(t *testing.T) {
	r := NewRouter(&Graph{}, geo.PortoBox, 8)
	if got := r.NearestNode(geo.PortoBox.Center()); got != -1 {
		t.Fatalf("NearestNode on empty graph = %d, want -1", got)
	}
	a, b := geo.PortoBox.Lerp(0.2, 0.2), geo.PortoBox.Lerp(0.7, 0.7)
	if got, want := r.Dist(a, b), geo.Equirectangular(a, b); got != want {
		t.Fatalf("empty-graph Dist = %v, want crow-fly %v", got, want)
	}
}

// TestRouterDistDominatesCrowFly is the admissibility property the
// spatial pruning rail depends on: the network metric never undercuts
// straight-line distance, so crow-fly ring queries remain conservative.
func TestRouterDistDominatesCrowFly(t *testing.T) {
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		a := cfg.Box.Lerp(rng.Float64(), rng.Float64())
		b := cfg.Box.Lerp(rng.Float64(), rng.Float64())
		if i%10 == 0 { // near-coincident pairs stress the access legs
			b = geo.Point{Lat: a.Lat + (rng.Float64()-0.5)*1e-3, Lon: a.Lon + (rng.Float64()-0.5)*1e-3}
		}
		crow := geo.Equirectangular(a, b)
		if net := r.Dist(a, b); net < crow {
			t.Fatalf("Dist(%v, %v) = %v < crow-fly %v", a, b, net, crow)
		}
	}
}

// TestRouterDistMatchesUnchachedRoute checks the whole snap+cache+ALT
// pipeline against a from-scratch computation.
func TestRouterDistMatchesUnchachedRoute(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Seed = 5
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a := cfg.Box.Lerp(rng.Float64(), rng.Float64())
		b := cfg.Box.Lerp(rng.Float64(), rng.Float64())
		u, _ := bruteNearest(g, a)
		v, _ := bruteNearest(g, b)
		want := geo.Equirectangular(a, g.Point(u)) + geo.Equirectangular(b, g.Point(v))
		if u != v {
			d, _ := g.ShortestPath(u, v)
			want += d
		}
		if crow := geo.Equirectangular(a, b); crow > want {
			want = crow
		}
		if got := r.Dist(a, b); got != want {
			t.Fatalf("Dist(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestAStarBitwiseEqualsDijkstra is the property wall for the routing
// kernels: on generated cities (grids across seeds, and a radial town),
// plain A* and landmark A* both return bitwise-identical distances to
// Dijkstra.
func TestAStarBitwiseEqualsDijkstra(t *testing.T) {
	check := func(t *testing.T, g *Graph) {
		t.Helper()
		lm := NewLandmarks(g, g.SelectLandmarks(8))
		n := g.NumNodes()
		for u := 0; u < n; u += 3 {
			for v := 0; v < n; v += 5 {
				d0, _ := g.ShortestPath(u, v)
				d1, _ := g.AStar(u, v)
				d2, _ := g.AStarALT(lm, u, v)
				if d0 != d1 {
					t.Fatalf("AStar(%d,%d) = %v, Dijkstra = %v", u, v, d1, d0)
				}
				if d0 != d2 {
					t.Fatalf("AStarALT(%d,%d) = %v, Dijkstra = %v", u, v, d2, d0)
				}
			}
		}
	}
	for seed := int64(1); seed <= 6; seed++ {
		cfg := DefaultGridConfig()
		cfg.Seed = seed
		cfg.Rows, cfg.Cols = 12, 14
		cfg.RemoveFrac = 0.05 * float64(seed%4)
		g, err := GenerateGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check(t, g)
	}
	g, err := GenerateRadial(geo.PortoBox.Center(), 5, 9, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	check(t, g)
}

// TestLandmarkLowerBoundAdmissible: the ALT bound never exceeds the
// true shortest-path distance (up to float rounding of the Dijkstra
// sums themselves).
func TestLandmarkLowerBoundAdmissible(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Rows, cfg.Cols = 10, 12
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLandmarks(g, g.SelectLandmarks(6))
	if lm.NumLandmarks() != 6 {
		t.Fatalf("NumLandmarks = %d, want 6", lm.NumLandmarks())
	}
	n := g.NumNodes()
	for u := 0; u < n; u += 2 {
		for v := 0; v < n; v += 3 {
			d, _ := g.ShortestPath(u, v)
			if b := lm.LowerBound(u, v); b > d*(1+1e-12)+1e-12 {
				t.Fatalf("LowerBound(%d,%d) = %v exceeds true distance %v", u, v, b, d)
			}
		}
	}
}

func TestSelectLandmarksClampsAndDedups(t *testing.T) {
	g, err := GenerateRadial(geo.PortoBox.Center(), 2, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.SelectLandmarks(1000)
	if len(ids) > g.NumNodes() {
		t.Fatalf("SelectLandmarks returned %d ids for %d nodes", len(ids), g.NumNodes())
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("landmark %d selected twice", id)
		}
		seen[id] = true
	}
	if got := g.SelectLandmarks(0); got != nil {
		t.Fatalf("SelectLandmarks(0) = %v, want nil", got)
	}
}

// TestRouterCacheSingleflight: concurrent misses on one key coalesce
// onto a single route computation. Run with -race.
func TestRouterCacheSingleflight(t *testing.T) {
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	a, b := cfg.Box.Lerp(0.1, 0.1), cfg.Box.Lerp(0.9, 0.9)

	const workers = 64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	vals := make([]float64, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			vals[w] = r.Dist(a, b)
		}(w)
	}
	start.Done()
	done.Wait()
	for w := 1; w < workers; w++ {
		if vals[w] != vals[0] {
			t.Fatalf("worker %d saw %v, worker 0 saw %v", w, vals[w], vals[0])
		}
	}
	_, misses, _ := r.CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1: concurrent misses on one key must run a single A*", misses)
	}
}

// TestRouterCacheConcurrentMixed hammers the cache with overlapping
// keys from many goroutines; run with -race. Every lookup lands in
// exactly one counter and the cache honors its bound.
func TestRouterCacheConcurrentMixed(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	r.SetCacheBound(64)

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				a := cfg.Box.Lerp(rng.Float64(), rng.Float64())
				b := cfg.Box.Lerp(rng.Float64(), rng.Float64())
				if d := r.Dist(a, b); math.IsNaN(d) || d < 0 {
					t.Errorf("Dist = %v", d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if size := r.CacheSize(); size > 64+routeCacheShards {
		t.Fatalf("cache size %d exceeds bound", size)
	}
	hits, misses, evictions := r.CacheStats()
	if misses == 0 || evictions == 0 {
		t.Fatalf("expected misses and evictions with a 64-entry bound; got hits=%d misses=%d evictions=%d",
			hits, misses, evictions)
	}
}

// TestRouterCacheEviction drives more distinct node pairs than the
// bound admits and checks FIFO eviction keeps the size capped while
// still returning correct distances.
func TestRouterCacheEviction(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	r.SetCacheBound(16) // one entry per shard
	n := g.NumNodes()
	for u := 0; u < n; u += 2 {
		for v := 1; v < n; v += 7 {
			if u == v {
				continue
			}
			want, _ := g.ShortestPath(u, v)
			if got := r.nodeDist(int32(u), int32(v)); got != want {
				t.Fatalf("nodeDist(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if size := r.CacheSize(); size > 16 {
		t.Fatalf("cache size %d exceeds bound 16", size)
	}
	_, misses, evictions := r.CacheStats()
	if evictions == 0 || evictions >= misses {
		t.Fatalf("evictions = %d, misses = %d: want 0 < evictions < misses", evictions, misses)
	}
	// Re-resolving an evicted key must recompute the same value.
	want, _ := g.ShortestPath(0, g.NumNodes()-1)
	if got := r.nodeDist(0, int32(g.NumNodes()-1)); got != want {
		t.Fatalf("post-eviction nodeDist = %v, want %v", got, want)
	}
}

func TestRouterCacheStatsAccounting(t *testing.T) {
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 10)
	a, b := cfg.Box.Lerp(0.2, 0.3), cfg.Box.Lerp(0.8, 0.6)
	r.Dist(a, b)
	r.Dist(a, b)
	r.Dist(a, b)
	hits, misses, evictions := r.CacheStats()
	if misses != 1 || hits != 2 || evictions != 0 {
		t.Fatalf("stats = (hits=%d, misses=%d, evictions=%d), want (2, 1, 0)", hits, misses, evictions)
	}
}

// --- micro-benchmarks (fast: they run in the short-bench smoke) ------

func benchGraph(b *testing.B) (*Graph, GridConfig) {
	b.Helper()
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g, cfg
}

func BenchmarkRouterNearestNode(b *testing.B) {
	g, cfg := benchGraph(b)
	r := NewRouter(g, cfg.Box, 10)
	pts := make([]geo.Point, 64)
	for i := range pts {
		pts[i] = cfg.Box.Lerp(float64(i%8)/8+0.06, float64(i/8)/8+0.06)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NearestNode(pts[i%len(pts)])
	}
}

func BenchmarkRouterDistCached(b *testing.B) {
	g, cfg := benchGraph(b)
	r := NewRouter(g, cfg.Box, 10)
	a, c := cfg.Box.Lerp(0.1, 0.15), cfg.Box.Lerp(0.85, 0.8)
	r.Dist(a, c) // warm the single hot entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dist(a, c)
	}
}

func benchmarkAStarPairs(b *testing.B, alt bool) {
	g, _ := benchGraph(b)
	var lm *Landmarks
	if alt {
		lm = NewLandmarks(g, g.SelectLandmarks(defaultLandmarks))
	}
	n := g.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := (i * 7919) % n
		v := (i*104729 + 13) % n
		if u == v {
			v = (v + 1) % n
		}
		if alt {
			g.AStarALT(lm, u, v)
		} else {
			g.AStar(u, v)
		}
	}
}

func BenchmarkAStarStraightLine(b *testing.B) { benchmarkAStarPairs(b, false) }
func BenchmarkAStarLandmarks(b *testing.B)    { benchmarkAStarPairs(b, true) }
