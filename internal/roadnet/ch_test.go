package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// chTestGraphs yields the same grid/radial spread the ALT bitwise test
// sweeps, so the two kernels face identical terrain.
func chTestGraphs(t *testing.T, visit func(name string, g *Graph, cfg GridConfig)) {
	t.Helper()
	for seed := int64(1); seed <= 6; seed++ {
		cfg := DefaultGridConfig()
		cfg.Rows, cfg.Cols = 12, 14
		cfg.Seed = seed
		cfg.RemoveFrac = 0.05 * float64(seed%4)
		g, err := GenerateGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		visit("grid", g, cfg)
	}
	g, err := GenerateRadial(geo.PortoBox.Center(), 5, 9, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	visit("radial", g, DefaultGridConfig())
}

// TestCHBitwiseEqualsDijkstra is the CH counterpart of the ALT bitwise
// wall: over random grids and a radial city, every Hierarchy.Query must
// return exactly Dijkstra's float — not approximately, bitwise. This is
// the property the whole dispatch-level ALT-vs-CH identity rests on.
func TestCHBitwiseEqualsDijkstra(t *testing.T) {
	pairs := 0
	chTestGraphs(t, func(name string, g *Graph, _ GridConfig) {
		h := BuildHierarchy(g)
		if !h.labeled() {
			t.Fatalf("%s: hub labels missing on a %d-node graph", name, g.NumNodes())
		}
		n := g.NumNodes()
		for u := 0; u < n; u += 3 {
			for v := 0; v < n; v += 5 {
				d0, _ := g.ShortestPath(u, v)
				d1 := h.Query(u, v)
				if d0 != d1 && !(math.IsInf(d0, 1) && math.IsInf(d1, 1)) {
					t.Fatalf("%s: CH Query(%d,%d) = %v, Dijkstra = %v (delta %g)",
						name, u, v, d1, d0, d1-d0)
				}
				pairs++
			}
		}
	})
	if pairs < 1000 {
		t.Fatalf("bitwise sweep covered only %d pairs", pairs)
	}
}

// TestCHSearchKernelBitwise pins the live-search kernels — the
// point-to-point bidirectional search and the exhaustive-plus-probe
// batch pair — directly against Dijkstra. On graphs over
// chLabelMaxNodes nodes these ARE the production query paths, but
// Query/DistMany take the hub-label route on test-sized graphs, so the
// fallbacks get their own bitwise wall here.
func TestCHSearchKernelBitwise(t *testing.T) {
	chTestGraphs(t, func(name string, g *Graph, _ GridConfig) {
		h := BuildHierarchy(g)
		sc := h.scratch()
		defer h.pool.Put(sc)
		n := g.NumNodes()
		for u := 0; u < n; u += 7 {
			for v := 0; v < n; v += 5 {
				if u == v {
					continue
				}
				d0, _ := g.ShortestPath(u, v)
				inf := math.IsInf(d0, 1)
				if d1 := h.queryPTP(sc, int32(u), int32(v)); d1 != d0 && !(inf && math.IsInf(d1, 1)) {
					t.Fatalf("%s: queryPTP(%d,%d) = %v, Dijkstra = %v", name, u, v, d1, d0)
				}
				// queryPTP burned the epochs; restore the shared forward
				// search exactly as a Router batch would hold it.
				h.forward(sc, int32(u))
				fwdEp := sc.epF
				if d2 := h.probeBackward(sc, int32(v)); d2 != d0 && !(inf && math.IsInf(d2, 1)) {
					t.Fatalf("%s: forward+probeBackward(%d,%d) = %v, Dijkstra = %v", name, u, v, d2, d0)
				}
				if sc.epF != fwdEp {
					t.Fatalf("%s: probeBackward disturbed the shared forward search", name)
				}
				h.backward(sc, int32(v))
				if d3 := h.probeForward(sc, int32(u)); d3 != d0 && !(inf && math.IsInf(d3, 1)) {
					t.Fatalf("%s: backward+probeForward(%d,%d) = %v, Dijkstra = %v", name, u, v, d3, d0)
				}
			}
		}
	})
}

// TestHierarchyShortcutsUnpack checks the shortcut tree round-trip
// directly: every shortcut arc must expand to a chain of original edges
// that starts at arc.from, ends at arc.to, walks real graph edges, and
// whose path-order fold reproduces a plain walk's accumulation.
func TestHierarchyShortcutsUnpack(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHierarchy(g)
	if h.NumShortcuts() == 0 {
		t.Fatal("default grid contracted with zero shortcuts; unpacking untested")
	}
	edgeKm := func(u, v int32) (float64, bool) {
		for _, e := range g.adj[u] {
			if e.to == v {
				return e.km, true
			}
		}
		return 0, false
	}
	sc := h.scratch()
	defer h.pool.Put(sc)
	checked := 0
	for i := range h.arcs {
		a := &h.arcs[i]
		if a.left < 0 {
			continue // original edge
		}
		// Expand to leaves with the production fold, then re-walk the
		// same expansion collecting endpoints to validate the chain.
		var leaves []int32
		stack := []int32{int32(i)}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arc := &h.arcs[top]
			if arc.left < 0 {
				leaves = append(leaves, top)
			} else {
				stack = append(stack, arc.right, arc.left)
			}
		}
		at := a.from
		sum := 0.0
		for _, li := range leaves {
			leaf := &h.arcs[li]
			if leaf.from != at {
				t.Fatalf("arc %d: unpacked chain breaks at node %d (leaf starts at %d)", i, at, leaf.from)
			}
			km, ok := edgeKm(leaf.from, leaf.to)
			if !ok {
				t.Fatalf("arc %d: leaf %d→%d is not an original graph edge", i, leaf.from, leaf.to)
			}
			if km != leaf.km {
				t.Fatalf("arc %d: leaf %d→%d weight %v != graph edge %v", i, leaf.from, leaf.to, leaf.km, km)
			}
			sum += km
			at = leaf.to
		}
		if at != a.to {
			t.Fatalf("arc %d: unpacked chain ends at %d, want %d", i, at, a.to)
		}
		if got := h.foldArc(sc, int32(i), 0); got != sum {
			t.Fatalf("arc %d: foldArc = %v, leaf-order fold = %v", i, got, sum)
		}
		checked++
	}
	if checked != h.NumShortcuts() {
		t.Fatalf("checked %d shortcut arcs, hierarchy reports %d", checked, h.NumShortcuts())
	}
}

// TestHierarchyDeterminism builds the same graph twice and demands
// identical hierarchies: same ranks, same arcs in the same order. The
// ordering heap breaks ties on node id precisely to make this hold.
func TestHierarchyDeterminism(t *testing.T) {
	chTestGraphs(t, func(name string, g *Graph, _ GridConfig) {
		h1 := BuildHierarchy(g)
		h2 := BuildHierarchy(g)
		if len(h1.arcs) != len(h2.arcs) {
			t.Fatalf("%s: arc counts differ: %d vs %d", name, len(h1.arcs), len(h2.arcs))
		}
		for i := range h1.arcs {
			if h1.arcs[i] != h2.arcs[i] {
				t.Fatalf("%s: arc %d differs: %+v vs %+v", name, i, h1.arcs[i], h2.arcs[i])
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if h1.Rank(v) != h2.Rank(v) {
				t.Fatalf("%s: rank(%d) differs: %d vs %d", name, v, h1.Rank(v), h2.Rank(v))
			}
		}
	})
}

// routerTestPoints returns a deterministic scatter of off-graph points
// inside the box (they exercise snapping and access legs too).
func routerTestPoints(box geo.BoundingBox, n int, salt int64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		fx := float64((int64(i)*2654435761 + salt*97) % 1000)
		fy := float64((int64(i)*40503 + salt*31 + 7) % 1000)
		pts[i] = geo.Point{
			Lat: box.MinLat + (box.MaxLat-box.MinLat)*fx/1000,
			Lon: box.MinLon + (box.MaxLon-box.MinLon)*fy/1000,
		}
	}
	return pts
}

// TestDistManyMatchesLoopedDist pins the one-to-many contract: both
// batch shapes must be bitwise equal to their per-pair loops, on both
// kernels, including repeated targets (cache path) and the shared
// endpoint itself.
func TestDistManyMatchesLoopedDist(t *testing.T) {
	cfg := DefaultGridConfig()
	cfg.Rows, cfg.Cols = 12, 14
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"ch", "ch-nolabels", "alt"} {
		algo := AlgoCH
		if mode == "alt" {
			algo = AlgoALT
		}
		r := NewRouterAlgo(g, cfg.Box, 8, algo)
		if mode == "ch-nolabels" {
			// Strip the hub-label tier so the batch path runs the
			// large-graph search kernels end to end through the Router.
			r.ch.labOffF, r.ch.labOffB, r.ch.labF, r.ch.labB = nil, nil, nil, nil
		}
		pts := routerTestPoints(cfg.Box, 24, 3)
		pts = append(pts, pts[4], pts[0]) // duplicates: cached on second sight
		origin := geo.Point{Lat: cfg.Box.MinLat + 0.7*(cfg.Box.MaxLat-cfg.Box.MinLat),
			Lon: cfg.Box.MinLon + 0.3*(cfg.Box.MaxLon-cfg.Box.MinLon)}
		pts = append(pts, origin)

		got := r.DistMany(origin, pts)
		for i, p := range pts {
			if want := r.Dist(origin, p); got[i] != want {
				t.Fatalf("%s: DistMany[%d] = %v, Dist = %v", mode, i, got[i], want)
			}
		}
		gotTo := r.DistManyTo(pts, origin)
		for i, p := range pts {
			if want := r.Dist(p, origin); gotTo[i] != want {
				t.Fatalf("%s: DistManyTo[%d] = %v, Dist = %v", mode, i, gotTo[i], want)
			}
		}
	}
}

// TestDistManyCacheAccounting demands the batch path's cache stats stay
// indistinguishable from looped Dist: one miss per unique node pair,
// hits for the rest, and a second batch serving entirely from cache.
func TestDistManyCacheAccounting(t *testing.T) {
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 8)
	pts := routerTestPoints(cfg.Box, 16, 9)
	origin := pts[0]
	targets := pts[1:]

	r.DistMany(origin, targets)
	hits1, misses1, _ := r.CacheStats()
	if misses1 == 0 {
		t.Fatal("first batch routed nothing")
	}

	r.ResetCacheStats()
	r.DistMany(origin, targets)
	hits2, misses2, _ := r.CacheStats()
	if misses2 != 0 {
		t.Fatalf("second identical batch recomputed %d routes", misses2)
	}
	if hits2 != hits1+misses1 {
		t.Fatalf("second batch hits = %d, want %d (one per routed pair)", hits2, hits1+misses1)
	}
}

// TestRouterAlgoBitwiseIdentity runs ALT and CH routers over the same
// graph and point scatter: every Dist must agree bitwise.
func TestRouterAlgoBitwiseIdentity(t *testing.T) {
	chTestGraphs(t, func(name string, g *Graph, cfg GridConfig) {
		alt := NewRouterAlgo(g, cfg.Box, 8, AlgoALT)
		ch := NewRouterAlgo(g, cfg.Box, 8, AlgoCH)
		pts := routerTestPoints(cfg.Box, 20, 5)
		for i, a := range pts {
			for j, b := range pts {
				da, dc := alt.Dist(a, b), ch.Dist(a, b)
				if da != dc {
					t.Fatalf("%s: Dist(%d,%d): alt %v != ch %v", name, i, j, da, dc)
				}
			}
		}
	})
}

// TestRouterResetCacheStats covers the bench-leg hygiene helper: stats
// drop to zero, cached routes survive.
func TestRouterResetCacheStats(t *testing.T) {
	cfg := DefaultGridConfig()
	g, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, cfg.Box, 8)
	pts := routerTestPoints(cfg.Box, 6, 1)
	for _, p := range pts[1:] {
		r.Dist(pts[0], p)
	}
	if _, m, _ := r.CacheStats(); m == 0 {
		t.Fatal("warmup produced no misses")
	}
	size := r.CacheSize()
	r.ResetCacheStats()
	if h, m, e := r.CacheStats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("stats after reset = %d/%d/%d, want zeros", h, m, e)
	}
	if r.CacheSize() != size {
		t.Fatalf("reset dropped cached routes: %d -> %d", size, r.CacheSize())
	}
	for _, p := range pts[1:] {
		r.Dist(pts[0], p)
	}
	if h, m, _ := r.CacheStats(); m != 0 || h == 0 {
		t.Fatalf("post-reset rerun: hits %d misses %d, want pure hits", h, m)
	}
}

func BenchmarkCHBuild(b *testing.B) {
	g, _ := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHierarchy(g)
	}
}

func BenchmarkCHQuery(b *testing.B) {
	g, _ := benchGraph(b)
	h := BuildHierarchy(g)
	n := g.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := (i * 7919) % n
		v := (i*104729 + 13) % n
		h.Query(u, v)
	}
}

// BenchmarkCHQueryPTP times the bidirectional search kernel alone (the
// large-graph fallback; BenchmarkCHQuery times the hub-label path the
// default grid actually uses).
func BenchmarkCHQueryPTP(b *testing.B) {
	g, _ := benchGraph(b)
	h := BuildHierarchy(g)
	sc := h.scratch()
	defer h.pool.Put(sc)
	n := g.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := (i * 7919) % n
		v := (i*104729 + 13) % n
		if u != v {
			h.queryPTP(sc, int32(u), int32(v))
		}
	}
}

func BenchmarkDistManyCH(b *testing.B) {
	g, cfg := benchGraph(b)
	r := NewRouter(g, cfg.Box, 10)
	r.SetCacheBound(1) // defeat memoization: measure the kernel
	pts := routerTestPoints(cfg.Box, 16, 2)
	out := make([]float64, len(pts)-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DistManyInto(pts[0], pts[1:], out)
	}
}

func BenchmarkDistLoopedCH(b *testing.B) {
	g, cfg := benchGraph(b)
	r := NewRouter(g, cfg.Box, 10)
	r.SetCacheBound(1)
	pts := routerTestPoints(cfg.Box, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pts[1:] {
			r.Dist(pts[0], p)
		}
	}
}
