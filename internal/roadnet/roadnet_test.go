package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestShortestPathTriangle(t *testing.T) {
	// Three nodes on a line; the direct edge is longer than the detour.
	g := &Graph{}
	a := g.AddNode(geo.Point{Lat: 41.15, Lon: -8.61})
	b := g.AddNode(geo.Point{Lat: 41.16, Lon: -8.61})
	c := g.AddNode(geo.Point{Lat: 41.17, Lon: -8.61})
	g.AddEdge(a, b, 1)
	g.AddEdge(b, c, 1)
	g.AddEdge(a, c, 5)
	d, path := g.ShortestPath(a, c)
	if math.Abs(d-2) > 1e-12 {
		t.Fatalf("dist = %g, want 2 via detour", d)
	}
	if len(path) != 3 || path[0] != a || path[1] != b || path[2] != c {
		t.Fatalf("path = %v, want [a b c]", path)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(geo.Point{Lat: 41.15, Lon: -8.61})
	b := g.AddNode(geo.Point{Lat: 41.16, Lon: -8.61})
	g.AddEdge(a, b, 1) // one-way
	if d, _ := g.ShortestPath(b, a); !math.IsInf(d, 1) {
		t.Fatalf("expected +Inf for unreachable, got %g", d)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(geo.Point{Lat: 41.15, Lon: -8.61})
	d, path := g.ShortestPath(a, a)
	if d != 0 || len(path) != 1 {
		t.Fatalf("self route: d=%g path=%v", d, path)
	}
}

// randomGraph builds a connected random graph for cross-checking.
func randomConnected(rng *rand.Rand, n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddNode(geo.PortoBox.Lerp(rng.Float64(), rng.Float64()))
	}
	// Random spanning chain keeps it connected.
	for i := 1; i < n; i++ {
		g.AddRoad(i-1, i, 1+rng.Float64())
	}
	extra := n * 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddRoad(u, v, 1+rng.Float64())
		}
	}
	return g
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(10)
		g := randomConnected(rng, n)

		// Floyd-Warshall reference.
		inf := math.Inf(1)
		fw := make([][]float64, n)
		for i := range fw {
			fw[i] = make([]float64, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = inf
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, e := range g.adj[u] {
				if e.km < fw[u][e.to] {
					fw[u][e.to] = e.km
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}

		for i := 0; i < n; i++ {
			ds := g.DistancesFrom(i)
			for j := 0; j < n; j++ {
				d, _ := g.ShortestPath(i, j)
				if math.Abs(d-fw[i][j]) > 1e-9 {
					t.Fatalf("trial %d: dist(%d,%d) = %g, FW %g", trial, i, j, d, fw[i][j])
				}
				if math.Abs(ds[j]-fw[i][j]) > 1e-9 {
					t.Fatalf("trial %d: DistancesFrom mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	// A*'s heuristic is admissible for roads with factor ≥ 1 (AddRoad),
	// so distances must agree with Dijkstra exactly.
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		u := rng.Intn(g.NumNodes())
		v := rng.Intn(g.NumNodes())
		dd, _ := g.ShortestPath(u, v)
		da, _ := g.AStar(u, v)
		if math.Abs(dd-da) > 1e-9 {
			t.Fatalf("A* %g != Dijkstra %g for (%d,%d)", da, dd, u, v)
		}
	}
}

func TestPathEdgesExist(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		u := rng.Intn(g.NumNodes())
		v := rng.Intn(g.NumNodes())
		d, path := g.ShortestPath(u, v)
		if u != v && (len(path) < 2 || path[0] != u || path[len(path)-1] != v) {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		var sum float64
		for k := 1; k < len(path); k++ {
			found := math.Inf(1)
			for _, e := range g.adj[path[k-1]] {
				if int(e.to) == path[k] && e.km < found {
					found = e.km
				}
			}
			if math.IsInf(found, 1) {
				t.Fatalf("path uses missing edge %d→%d", path[k-1], path[k])
			}
			sum += found
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path length %g != reported %g", sum, d)
		}
	}
}

func TestGridGeneratorConnectivity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := DefaultGridConfig()
		cfg.Seed = seed
		cfg.RemoveFrac = 0.3
		g, err := GenerateGrid(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.StronglyConnected() {
			t.Fatalf("seed %d: grid not strongly connected", seed)
		}
		if g.NumNodes() != cfg.Rows*cfg.Cols {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), cfg.Rows*cfg.Cols)
		}
	}
}

func TestGridConfigValidation(t *testing.T) {
	cases := []func(*GridConfig){
		func(c *GridConfig) { c.Rows = 1 },
		func(c *GridConfig) { c.RemoveFrac = 0.9 },
		func(c *GridConfig) { c.DiagonalFrac = -0.1 },
		func(c *GridConfig) { c.Jitter = 0.9 },
		func(c *GridConfig) { c.Box.MaxLat = c.Box.MinLat },
	}
	for i, mut := range cases {
		cfg := DefaultGridConfig()
		mut(&cfg)
		if _, err := GenerateGrid(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRadialGenerator(t *testing.T) {
	center := geo.PortoBox.Center()
	g, err := GenerateRadial(center, 4, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1+4*8 {
		t.Fatalf("nodes = %d, want 33", g.NumNodes())
	}
	if !g.StronglyConnected() {
		t.Fatal("radial network not strongly connected")
	}
	// Opposite rim nodes route through or around the center: distance
	// must be positive and finite.
	d, _ := g.ShortestPath(1, 1+8*3+4)
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("rim-to-rim distance %g", d)
	}
}

func TestRadialValidation(t *testing.T) {
	center := geo.PortoBox.Center()
	if _, err := GenerateRadial(center, 0, 8, 5, 1); err == nil {
		t.Error("0 rings accepted")
	}
	if _, err := GenerateRadial(center, 2, 2, 5, 1); err == nil {
		t.Error("2 spokes accepted")
	}
	if _, err := GenerateRadial(center, 2, 6, -1, 1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestRouterSnapAndDistance(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, geo.PortoBox, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		b := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
		crow := geo.Equirectangular(a, b)
		net := r.Dist(a, b)
		if net < 0 || math.IsInf(net, 1) || math.IsNaN(net) {
			t.Fatalf("bad network distance %g", net)
		}
		// Network distance cannot be much shorter than straight line
		// (snap legs can shave a little on very short hops).
		if crow > 2 && net < crow*0.8 {
			t.Fatalf("network %g below straight-line %g", net, crow)
		}
	}
}

func TestRouterNearestNode(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, geo.PortoBox, 8)
	// The nearest node to a node's own position is that node (or one at
	// equal distance).
	for id := 0; id < g.NumNodes(); id += 17 {
		got := r.NearestNode(g.Point(id))
		if geo.Equirectangular(g.Point(got), g.Point(id)) > 1e-9 {
			t.Fatalf("NearestNode(%d's point) = %d at positive distance", id, got)
		}
	}
}

func TestRouterCaches(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, geo.PortoBox, 8)
	a := geo.PortoBox.Lerp(0.1, 0.1)
	b := geo.PortoBox.Lerp(0.9, 0.9)
	d1 := r.Dist(a, b)
	n1 := r.CacheSize()
	d2 := r.Dist(a, b)
	if d1 != d2 {
		t.Fatalf("cached distance differs: %g vs %g", d1, d2)
	}
	if r.CacheSize() != n1 {
		t.Fatalf("second identical query grew the cache")
	}
}

func TestRouterConcurrentAccess(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, geo.PortoBox, 8)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				a := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
				b := geo.PortoBox.Lerp(rng.Float64(), rng.Float64())
				if d := r.Dist(a, b); d < 0 {
					panic("negative distance")
				}
			}
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestGridCircuityRealistic(t *testing.T) {
	g, err := GenerateGrid(DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, geo.PortoBox, 8)
	c := r.Circuity(300)
	// Manhattan-style networks sit between 1.1 (many diagonals) and
	// ~1.45 (pure grid with removals).
	if c < 1.05 || c > 1.6 {
		t.Fatalf("circuity %.3f outside realistic urban range", c)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := &Graph{}
	g.AddNode(geo.PortoBox.Center())
	for _, fn := range []func(){
		func() { g.AddEdge(0, 1, 1) },
		func() { g.AddEdge(0, 0, -1) },
		func() { g.AddEdge(0, 0, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
