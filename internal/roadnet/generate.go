package roadnet

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
)

// This file generates synthetic city street networks. Porto's street
// data is not available offline, so — per the substitution rule in
// DESIGN.md — the framework routes over generated networks that share
// the properties that matter for travel-distance estimation: connected,
// roughly uniform coverage of the bounding box, and realistic circuity
// (network distance / straight-line distance ≈ 1.2–1.4).

// GridConfig parameterizes GenerateGrid.
type GridConfig struct {
	Box  geo.BoundingBox
	Rows int
	Cols int
	// RemoveFrac removes this fraction of interior streets at random
	// (irregularity raises circuity); connectivity is restored by
	// keeping a full boundary ring. In [0, 0.4].
	RemoveFrac float64
	// DiagonalFrac adds diagonal avenues across this fraction of
	// blocks, lowering circuity like real arterial roads.
	DiagonalFrac float64
	// Jitter displaces nodes by up to this fraction of the cell pitch,
	// so streets are not axis-perfect.
	Jitter float64
	Seed   int64
}

// DefaultGridConfig returns the Porto-box street grid used by examples
// and benches: ~20x24 intersections, 10% missing streets, 8% diagonal
// avenues, mild jitter.
func DefaultGridConfig() GridConfig {
	return GridConfig{
		Box:          geo.PortoBox,
		Rows:         20,
		Cols:         24,
		RemoveFrac:   0.10,
		DiagonalFrac: 0.08,
		Jitter:       0.2,
		Seed:         1,
	}
}

// Validate reports whether the configuration is usable.
func (c GridConfig) Validate() error {
	switch {
	case !c.Box.Valid():
		return fmt.Errorf("roadnet: invalid box %+v", c.Box)
	case c.Rows < 2 || c.Cols < 2:
		return fmt.Errorf("roadnet: grid %dx%d too small", c.Rows, c.Cols)
	case c.RemoveFrac < 0 || c.RemoveFrac > 0.4:
		return fmt.Errorf("roadnet: remove fraction %.2f outside [0, 0.4]", c.RemoveFrac)
	case c.DiagonalFrac < 0 || c.DiagonalFrac > 1:
		return fmt.Errorf("roadnet: diagonal fraction %.2f outside [0, 1]", c.DiagonalFrac)
	case c.Jitter < 0 || c.Jitter > 0.45:
		return fmt.Errorf("roadnet: jitter %.2f outside [0, 0.45]", c.Jitter)
	}
	return nil
}

// GenerateGrid builds a jittered Manhattan-style street grid over the
// box. The returned graph is strongly connected: the boundary ring and
// one row/column spine are always kept.
func GenerateGrid(cfg GridConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{}

	id := func(r, c int) int { return r*cfg.Cols + c }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			fLat := (float64(r) + 0.5 + (rng.Float64()-0.5)*2*cfg.Jitter) / float64(cfg.Rows)
			fLon := (float64(c) + 0.5 + (rng.Float64()-0.5)*2*cfg.Jitter) / float64(cfg.Cols)
			g.AddNode(cfg.Box.Lerp(clamp01(fLat), clamp01(fLon)))
		}
	}

	keep := func(r, c int) bool { // streets incident to the ring or spine survive
		return r == 0 || c == 0 || r == cfg.Rows-1 || c == cfg.Cols-1 ||
			r == cfg.Rows/2 || c == cfg.Cols/2
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				if keep(r, c) || rng.Float64() >= cfg.RemoveFrac {
					g.AddRoad(id(r, c), id(r, c+1), 1)
				}
			}
			if r+1 < cfg.Rows {
				if keep(r, c) || rng.Float64() >= cfg.RemoveFrac {
					g.AddRoad(id(r, c), id(r+1, c), 1)
				}
			}
			if r+1 < cfg.Rows && c+1 < cfg.Cols && rng.Float64() < cfg.DiagonalFrac {
				if rng.Intn(2) == 0 {
					g.AddRoad(id(r, c), id(r+1, c+1), 1)
				} else {
					g.AddRoad(id(r, c+1), id(r+1, c), 1)
				}
			}
		}
	}
	// Random removal can isolate an interior intersection (all four of
	// its streets removed); repair by reconnecting stranded nodes to a
	// grid neighbor until the network is strongly connected. All roads
	// are two-way, so connecting components pairwise always converges.
	for !g.StronglyConnected() {
		reached := g.reachableFrom(0)
		repaired := false
		for r := 0; r < cfg.Rows && !repaired; r++ {
			for c := 0; c < cfg.Cols && !repaired; c++ {
				if reached[id(r, c)] {
					continue
				}
				for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
					if nb[0] < 0 || nb[0] >= cfg.Rows || nb[1] < 0 || nb[1] >= cfg.Cols {
						continue
					}
					if reached[id(nb[0], nb[1])] {
						g.AddRoad(id(r, c), id(nb[0], nb[1]), 1)
						repaired = true
						break
					}
				}
			}
		}
		if !repaired {
			// No stranded node borders the main component — cannot
			// happen on a grid, but guard against an infinite loop.
			return nil, fmt.Errorf("roadnet: could not repair grid connectivity (cfg %+v)", cfg)
		}
	}
	return g, nil
}

// reachableFrom marks nodes reachable from src along directed edges.
func (g *Graph) reachableFrom(src int) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int32{int32(src)}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// GenerateRadial builds a ring-and-spoke network (historic-city shape):
// `rings` concentric rings crossed by `spokes` radial avenues meeting
// at a central node.
func GenerateRadial(center geo.Point, rings, spokes int, maxRadiusKm float64, seed int64) (*Graph, error) {
	if rings < 1 || spokes < 3 {
		return nil, fmt.Errorf("roadnet: radial needs ≥1 ring and ≥3 spokes, got %d, %d", rings, spokes)
	}
	if maxRadiusKm <= 0 {
		return nil, fmt.Errorf("roadnet: non-positive radius %g", maxRadiusKm)
	}
	g := &Graph{}
	c := g.AddNode(center)
	// node id of ring r (0-based), spoke s.
	id := func(r, s int) int { return 1 + r*spokes + s }
	for r := 0; r < rings; r++ {
		radius := maxRadiusKm * float64(r+1) / float64(rings)
		for s := 0; s < spokes; s++ {
			bearing := 2 * 3.141592653589793 * float64(s) / float64(spokes)
			g.AddNode(geo.Offset(center, bearing, radius))
		}
	}
	for s := 0; s < spokes; s++ {
		g.AddRoad(c, id(0, s), 1) // center to first ring
		for r := 0; r+1 < rings; r++ {
			g.AddRoad(id(r, s), id(r+1, s), 1) // radial segments
		}
	}
	for r := 0; r < rings; r++ {
		for s := 0; s < spokes; s++ {
			g.AddRoad(id(r, s), id(r, (s+1)%spokes), 1) // ring segments
		}
	}
	_ = seed // reserved for future jitter; deterministic today
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("roadnet: radial network not strongly connected")
	}
	return g, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
