package roadnet

import (
	"container/heap"
	"math"

	"repro/internal/geo"
)

// This file implements ALT ("A*, Landmarks, Triangle inequality")
// lower bounds. A landmark L with precomputed shortest-path distances
// to and from every node yields, by the triangle inequality,
//
//	d(u, t) ≥ d(L, t) − d(L, u)   and   d(u, t) ≥ d(u, L) − d(t, L),
//
// both consistent heuristics for A*. The maximum over a handful of
// well-spread landmarks (and the straight-line bound) is consistent in
// turn, so A* with it returns exactly the Dijkstra distance while
// settling far fewer nodes — the win grows with graph size because the
// landmark bound, unlike straight-line distance, already prices in the
// network's circuity.

// Landmarks holds the precomputed ALT distance tables for one graph.
// Construct with NewLandmarks; the zero value yields no bound.
type Landmarks struct {
	ids []int
	fwd [][]float64 // fwd[i][v] = d(ids[i] → v)
	rev [][]float64 // rev[i][v] = d(v → ids[i])
}

// SelectLandmarks picks k well-spread landmark nodes by farthest-point
// sampling under the network metric: start from node 0, then repeatedly
// add the node farthest from the set chosen so far. Deterministic; k is
// clamped to the node count.
func (g *Graph) SelectLandmarks(k int) []int {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	ids := []int{0}
	minDist := g.DistancesFrom(0)
	for len(ids) < k {
		next, far := -1, -1.0
		for v := 0; v < n; v++ {
			d := minDist[v]
			if math.IsInf(d, 1) {
				continue // unreachable nodes make useless landmarks
			}
			if d > far {
				next, far = v, d
			}
		}
		if next < 0 || far == 0 {
			break // every reachable node already is a landmark
		}
		ids = append(ids, next)
		for v, d := range g.DistancesFrom(next) {
			if d < minDist[v] {
				minDist[v] = d
			}
		}
	}
	return ids
}

// NewLandmarks precomputes forward and reverse shortest-path distance
// tables from each landmark (two Dijkstra sweeps per landmark).
func NewLandmarks(g *Graph, ids []int) *Landmarks {
	l := &Landmarks{ids: append([]int(nil), ids...)}
	for _, id := range l.ids {
		l.fwd = append(l.fwd, g.DistancesFrom(id))
		l.rev = append(l.rev, g.DistancesTo(id))
	}
	return l
}

// NumLandmarks returns the landmark count.
func (l *Landmarks) NumLandmarks() int { return len(l.ids) }

// LowerBound returns the ALT lower bound on d(u, t): the best triangle
// bound over all landmarks, never negative. Non-finite table entries
// (unreachable nodes) are skipped, so the bound stays admissible on
// graphs that are not strongly connected.
func (l *Landmarks) LowerBound(u, t int) float64 {
	var best float64
	for i := range l.ids {
		if b := l.fwd[i][t] - l.fwd[i][u]; b > best && !math.IsInf(l.fwd[i][u], 1) {
			best = b
		}
		if b := l.rev[i][u] - l.rev[i][t]; b > best && !math.IsInf(l.rev[i][t], 1) {
			best = b
		}
	}
	return best
}

// DistancesTo runs a full single-destination Dijkstra (Dijkstra on the
// transposed graph) and returns the distance from every node to dst
// (+Inf where dst is unreachable). With AddRoad's two-way streets it
// equals DistancesFrom; it differs only on graphs with one-way edges.
func (g *Graph) DistancesTo(dst int) []float64 {
	if dst < 0 || dst >= len(g.pts) {
		panic("roadnet: destination out of range")
	}
	n := len(g.pts)
	// Transpose adjacency once; landmark construction is offline.
	tr := make([][]halfEdge, n)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			tr[e.to] = append(tr[e.to], halfEdge{to: int32(u), km: e.km})
		}
	}
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[dst] = 0
	q := pq{{node: int32(dst)}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range tr[u] {
			if nd := dist[u] + e.km; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// AStarALT runs A* with the ALT landmark heuristic combined (by max)
// with the straight-line bound. Results equal ShortestPath exactly —
// the heuristic is consistent — it just settles fewer nodes than the
// straight-line heuristic alone. A nil Landmarks falls back to AStar.
func (g *Graph) AStarALT(lm *Landmarks, src, dst int) (float64, []int) {
	if lm == nil || len(lm.ids) == 0 {
		return g.AStar(src, dst)
	}
	target := g.pts[dst]
	return g.route(src, dst, func(n int32) float64 {
		h := lm.LowerBound(int(n), dst)
		if sl := geo.Equirectangular(g.pts[n], target); sl > h {
			h = sl
		}
		return h
	})
}
