package roadnet

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
)

// Algorithm selects the Router's point-to-point routing kernel. Both
// kernels return bitwise-identical distances (the differential tests
// enforce it), so the choice is purely a speed/preprocessing trade.
type Algorithm int

const (
	// AlgoCH routes over a contraction hierarchy: heavier
	// preprocessing, much faster queries, and one-to-many batching
	// (DistMany). The default.
	AlgoCH Algorithm = iota
	// AlgoALT routes with landmark-accelerated A*: light
	// preprocessing, per-pair queries only.
	AlgoALT
)

// String implements fmt.Stringer for bench/CLI labels.
func (a Algorithm) String() string {
	if a == AlgoALT {
		return "alt"
	}
	return "ch"
}

// Router adapts a road graph to the framework's geo.DistanceFunc
// contract: Dist(a, b) snaps both points to their nearest intersections,
// routes between them with the configured kernel (contraction-hierarchy
// query by default, landmark-accelerated A* for AlgoALT), and adds the
// straight-line access legs. Route results are memoized in a bounded,
// sharded cache with per-key inflight de-duplication, so the O(M²)
// task-map construction and 50k-driver dispatch days pay each route
// once without growing memory without bound.
//
// Dist never returns less than the straight-line distance between its
// arguments, so crow-fly ring pruning (internal/spatial) stays
// admissible under the network metric.
//
// The snap grid's ring-search termination bound assumes the box passed
// to NewRouter covers the graph's nodes, which the generators in this
// package guarantee.
//
// Router is safe for concurrent use.
type Router struct {
	g    *Graph
	algo Algorithm
	lm   *Landmarks // ALT kernel state (nil under AlgoCH)
	ch   *Hierarchy // CH kernel state (nil under AlgoALT)

	// snap index: grid buckets of node ids.
	grid    *geo.Grid
	buckets [][]int32
	spanKm  float64 // conservative min cell span, for ring termination

	maxPerShard int64
	shards      [routeCacheShards]routeShard

	hits, misses, evictions atomic.Uint64
}

const (
	// routeCacheShards is the number of independently locked cache
	// shards; node-pair keys hash across them so concurrent match
	// workers rarely contend.
	routeCacheShards = 16

	// DefaultCacheEntries bounds the route cache. A city graph with n
	// intersections has at most n² routable pairs (~230k for the
	// default 20×24 grid), so the default never evicts there while
	// still capping memory (~48 MiB of entries) on huge graphs.
	DefaultCacheEntries = 1 << 20

	// defaultLandmarks is the number of ALT landmarks precomputed by
	// NewRouter. Eight well-spread landmarks are the classic
	// sweet spot: ~16 Dijkstra sweeps of preprocessing for a heuristic
	// that already prices in circuity.
	defaultLandmarks = 8
)

// routeShard is one lock-striped slice of the route cache.
type routeShard struct {
	mu       sync.Mutex
	entries  map[[2]int32]float64
	fifo     [][2]int32 // insertion order, for FIFO eviction
	inflight map[[2]int32]*routeCall
}

// routeCall is a single in-flight route computation; concurrent misses
// on the same key wait on done instead of recomputing.
type routeCall struct {
	done chan struct{}
	d    float64
}

// NewRouter builds a contraction-hierarchy router over the graph,
// indexing nodes into an s x s snap grid covering box. The route cache
// holds up to DefaultCacheEntries routes; tune with SetCacheBound
// before use.
func NewRouter(g *Graph, box geo.BoundingBox, s int) *Router {
	return NewRouterAlgo(g, box, s, AlgoCH)
}

// NewRouterAlgo is NewRouter with an explicit routing kernel: AlgoCH
// preprocesses a contraction hierarchy, AlgoALT precomputes ALT
// landmarks. Both yield bitwise-identical distances.
func NewRouterAlgo(g *Graph, box geo.BoundingBox, s int, algo Algorithm) *Router {
	if s < 1 {
		s = 8
	}
	r := &Router{
		g:    g,
		algo: algo,
		grid: geo.NewGrid(box, s, s),
	}
	r.maxPerShard = ceilDiv(DefaultCacheEntries, routeCacheShards)
	h, w := r.grid.CellSpanKm()
	r.spanKm = math.Min(h, w)
	r.buckets = make([][]int32, r.grid.NumCells())
	for id := 0; id < g.NumNodes(); id++ {
		c := r.grid.CellOf(g.Point(id))
		r.buckets[c] = append(r.buckets[c], int32(id))
	}
	if algo == AlgoALT {
		r.lm = NewLandmarks(g, g.SelectLandmarks(defaultLandmarks))
	} else {
		r.ch = BuildHierarchy(g)
	}
	return r
}

// Algo reports which routing kernel the router was built with.
func (r *Router) Algo() Algorithm { return r.algo }

// SetCacheBound caps the route cache at roughly maxEntries memoized
// node pairs (rounded up to a multiple of the shard count; at least one
// per shard). Call before routing; it does not shrink an existing
// cache.
func (r *Router) SetCacheBound(maxEntries int) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	r.maxPerShard = ceilDiv(int64(maxEntries), routeCacheShards)
}

func ceilDiv(n, d int64) int64 { return (n + d - 1) / d }

// NearestNode returns the graph node closest to p (-1 on an empty
// graph). It searches the snap grid in expanding Chebyshev rings around
// p's cell and stops only when the next ring cannot possibly hold a
// closer node: any point in a cell r rings away is at least
// (r-1)·min(cell height, cell width) from p, the same conservative
// bound internal/spatial uses. A populated-but-farther Moore
// neighborhood therefore never masks the true nearest node in a later
// ring.
func (r *Router) NearestNode(p geo.Point) int {
	cell := r.grid.CellOf(p)
	row, col := cell/r.grid.Cols, cell%r.grid.Cols
	best := int32(-1)
	bestD := math.Inf(1)
	consider := func(ids []int32) {
		for _, id := range ids {
			if d := geo.Equirectangular(p, r.g.Point(int(id))); d < bestD {
				best, bestD = id, d
			}
		}
	}
	maxRing := r.grid.Rows
	if r.grid.Cols > maxRing {
		maxRing = r.grid.Cols
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 && float64(ring-1)*r.spanKm > bestD {
			break
		}
		r.ringCells(row, col, ring, func(c int) { consider(r.buckets[c]) })
	}
	return int(best)
}

// ringCells visits the in-bounds cells at exactly Chebyshev distance
// ring from (row, col), in deterministic order.
func (r *Router) ringCells(row, col, ring int, visit func(cell int)) {
	rows, cols := r.grid.Rows, r.grid.Cols
	cellAt := func(rr, cc int) {
		if rr >= 0 && rr < rows && cc >= 0 && cc < cols {
			visit(rr*cols + cc)
		}
	}
	if ring == 0 {
		cellAt(row, col)
		return
	}
	for cc := col - ring; cc <= col+ring; cc++ { // top and bottom edges
		cellAt(row-ring, cc)
		cellAt(row+ring, cc)
	}
	for rr := row - ring + 1; rr <= row+ring-1; rr++ { // side edges, corners excluded
		cellAt(rr, col-ring)
		cellAt(rr, col+ring)
	}
}

// Dist computes the network distance between a and b in kilometers:
// straight-line access to the nearest intersections plus the shortest
// route between them, floored at the straight-line distance so the
// result is a true metric over-approximation of crow-fly (the
// equirectangular projection's triangle inequality holds only to ~1e-4
// at city scale, and pruning correctness must not depend on that). It
// implements geo.DistanceFunc.
func (r *Router) Dist(a, b geo.Point) float64 {
	crow := geo.Equirectangular(a, b)
	u := r.NearestNode(a)
	if u < 0 {
		return crow // empty graph: degrade to crow-fly
	}
	v := r.NearestNode(b)
	d := geo.Equirectangular(a, r.g.Point(u)) + geo.Equirectangular(b, r.g.Point(v))
	if u != v {
		d += r.nodeDist(int32(u), int32(v))
	}
	if crow > d {
		d = crow
	}
	return d
}

// shard maps a node-pair key onto its cache shard.
func (r *Router) shard(key [2]int32) *routeShard {
	h := uint32(key[0])*0x9E3779B1 ^ uint32(key[1])*0x85EBCA77
	return &r.shards[h%routeCacheShards]
}

// nodeDist returns the cached network distance between two
// intersections, computing it at most once per key: concurrent misses
// coalesce onto a single in-flight route computation (counted as one
// miss; the waiters count as hits, like any lookup served without a
// route computation).
func (r *Router) nodeDist(u, v int32) float64 {
	return r.nodeDistVia(u, v, nil)
}

// routeNodes is the router's default point-to-point kernel.
func (r *Router) routeNodes(u, v int32) float64 {
	if r.ch != nil {
		return r.ch.Query(int(u), int(v))
	}
	d, _ := r.g.AStarALT(r.lm, int(u), int(v))
	return d
}

// nodeDistVia is nodeDist with a pluggable kernel: when compute is
// non-nil it replaces routeNodes for this key's (single) computation.
// The batched one-to-many queries pass a closure that probes a shared
// half-search, so batch lookups keep the exact cache semantics — and
// hit/miss accounting — of looped per-pair lookups.
func (r *Router) nodeDistVia(u, v int32, compute func() float64) float64 {
	key := [2]int32{u, v}
	s := r.shard(key)
	s.mu.Lock()
	if d, ok := s.entries[key]; ok {
		s.mu.Unlock()
		r.hits.Add(1)
		return d
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		r.hits.Add(1)
		return c.d
	}
	c := &routeCall{done: make(chan struct{})}
	if s.inflight == nil {
		s.inflight = make(map[[2]int32]*routeCall)
	}
	s.inflight[key] = c
	s.mu.Unlock()

	r.misses.Add(1)
	if compute != nil {
		c.d = compute()
	} else {
		c.d = r.routeNodes(u, v)
	}
	close(c.done)

	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[[2]int32]float64)
	}
	if int64(len(s.entries)) >= r.maxPerShard {
		old := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.entries, old)
		r.evictions.Add(1)
	}
	s.entries[key] = c.d
	s.fifo = append(s.fifo, key)
	delete(s.inflight, key)
	s.mu.Unlock()
	return c.d
}

// CacheSize returns the number of memoized node pairs (for tests and
// capacity planning).
func (r *Router) CacheSize() int {
	var n int
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// ResetCacheStats zeroes the hit/miss/eviction counters. The memoized
// routes themselves are kept — benches call this between legs (and
// around Circuity sampling) so each leg reports its own rates.
func (r *Router) ResetCacheStats() {
	r.hits.Store(0)
	r.misses.Store(0)
	r.evictions.Store(0)
}

// CacheStats returns the route cache's lifetime hit, miss, and eviction
// counters. Hits are lookups served without running a route computation
// (including waiters coalesced onto another goroutine's in-flight
// route); misses count route computations; evictions count entries
// dropped to honor the cache bound.
func (r *Router) CacheStats() (hits, misses, evictions uint64) {
	return r.hits.Load(), r.misses.Load(), r.evictions.Load()
}

// DistMany returns the network distances from origin to every target:
// element i is bitwise equal to Dist(origin, targets[i]). Under AlgoCH
// the whole batch shares one forward upward search (origin's side) and
// pays only a small bucket-probing backward search per target, so it
// beats looped Dist once a handful of targets share the origin; under
// AlgoALT it degrades to the loop. Cache semantics are identical to
// looped Dist: each pair is looked up, coalesced, counted, and stored
// exactly as a Dist call would.
func (r *Router) DistMany(origin geo.Point, targets []geo.Point) []float64 {
	out := make([]float64, len(targets))
	r.DistManyInto(origin, targets, out)
	return out
}

// DistManyInto is DistMany without the allocation; out must have at
// least len(targets) elements.
func (r *Router) DistManyInto(origin geo.Point, targets []geo.Point, out []float64) {
	if len(out) < len(targets) {
		panic("roadnet: DistManyInto out buffer too small")
	}
	u := r.NearestNode(origin)
	if u < 0 || r.ch == nil {
		for i, b := range targets {
			out[i] = r.Dist(origin, b)
		}
		return
	}
	var sc *chScratch
	for i, b := range targets {
		crow := geo.Equirectangular(origin, b)
		v := r.NearestNode(b)
		d := geo.Equirectangular(origin, r.g.Point(u)) + geo.Equirectangular(b, r.g.Point(v))
		if u != v {
			if sc == nil {
				sc = r.ch.scratch()
				r.ch.prepareForward(sc, int32(u))
			}
			d += r.nodeDistVia(int32(u), int32(v), func() float64 {
				return r.ch.probeTarget(sc, int32(v))
			})
		}
		if crow > d {
			d = crow
		}
		out[i] = d
	}
	if sc != nil {
		r.ch.pool.Put(sc)
	}
}

// DistManyTo is DistMany's many-to-one mirror: element i is bitwise
// equal to Dist(sources[i], dest). (The two shapes are distinct because
// float addition is not associative — Dist is directional down to the
// last bit, so a shared search must sit on the side the pairs share.)
func (r *Router) DistManyTo(sources []geo.Point, dest geo.Point) []float64 {
	out := make([]float64, len(sources))
	r.DistManyToInto(sources, dest, out)
	return out
}

// DistManyToInto is DistManyTo without the allocation; out must have at
// least len(sources) elements.
func (r *Router) DistManyToInto(sources []geo.Point, dest geo.Point, out []float64) {
	if len(out) < len(sources) {
		panic("roadnet: DistManyToInto out buffer too small")
	}
	if len(sources) == 0 {
		return
	}
	v := r.NearestNode(dest)
	if v < 0 || r.ch == nil {
		for i, a := range sources {
			out[i] = r.Dist(a, dest)
		}
		return
	}
	var sc *chScratch
	for i, a := range sources {
		crow := geo.Equirectangular(a, dest)
		u := r.NearestNode(a)
		d := geo.Equirectangular(a, r.g.Point(u)) + geo.Equirectangular(dest, r.g.Point(v))
		if u != v {
			if sc == nil {
				sc = r.ch.scratch()
				r.ch.prepareBackward(sc, int32(v))
			}
			d += r.nodeDistVia(int32(u), int32(v), func() float64 {
				return r.ch.probeSource(sc, int32(u))
			})
		}
		if crow > d {
			d = crow
		}
		out[i] = d
	}
	if sc != nil {
		r.ch.pool.Put(sc)
	}
}

// Circuity estimates the network's mean circuity (network distance over
// straight-line distance) by sampling n deterministic node pairs. Used
// by tests and benches to assert realism.
func (r *Router) Circuity(samples int) float64 {
	n := r.g.NumNodes()
	if n < 2 || samples < 1 {
		return 1
	}
	var sum float64
	var count int
	for i := 0; i < samples; i++ {
		u := (i * 7919) % n
		v := (i*104729 + 13) % n
		if u == v {
			continue
		}
		crow := geo.Equirectangular(r.g.Point(u), r.g.Point(v))
		if crow < 0.2 {
			continue
		}
		net := r.nodeDist(int32(u), int32(v))
		sum += net / crow
		count++
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}
