package roadnet

import (
	"sync"

	"repro/internal/geo"
)

// Router adapts a road graph to the framework's geo.DistanceFunc
// contract: Dist(a, b) snaps both points to their nearest intersections,
// routes between them, and adds the straight-line access legs. Results
// are memoized per node pair, so the O(M²) task-map construction pays
// each route once.
//
// Router is safe for concurrent use.
type Router struct {
	g *Graph

	// snap index: grid buckets of node ids.
	grid    *geo.Grid
	buckets [][]int32

	mu    sync.Mutex
	cache map[[2]int32]float64
}

// NewRouter builds a router over the graph, indexing nodes into an
// s x s snap grid covering box.
func NewRouter(g *Graph, box geo.BoundingBox, s int) *Router {
	if s < 1 {
		s = 8
	}
	r := &Router{
		g:     g,
		grid:  geo.NewGrid(box, s, s),
		cache: make(map[[2]int32]float64),
	}
	r.buckets = make([][]int32, r.grid.NumCells())
	for id := 0; id < g.NumNodes(); id++ {
		c := r.grid.CellOf(g.Point(id))
		r.buckets[c] = append(r.buckets[c], int32(id))
	}
	return r
}

// NearestNode returns the graph node closest to p, searching the
// point's snap cell and growing to its neighbors (then everything) as
// needed.
func (r *Router) NearestNode(p geo.Point) int {
	cell := r.grid.CellOf(p)
	best := int32(-1)
	bestD := 0.0
	consider := func(ids []int32) {
		for _, id := range ids {
			d := geo.Equirectangular(p, r.g.Point(int(id)))
			if best < 0 || d < bestD {
				best, bestD = id, d
			}
		}
	}
	consider(r.buckets[cell])
	for _, nb := range r.grid.Neighbors(cell) {
		consider(r.buckets[nb])
	}
	if best >= 0 {
		return int(best)
	}
	// Sparse area: fall back to a full scan.
	for c := range r.buckets {
		consider(r.buckets[c])
	}
	return int(best)
}

// Dist computes the network distance between a and b in kilometers:
// straight-line access to the nearest intersections plus the shortest
// route between them. It implements geo.DistanceFunc.
func (r *Router) Dist(a, b geo.Point) float64 {
	u := r.NearestNode(a)
	v := r.NearestNode(b)
	access := geo.Equirectangular(a, r.g.Point(u)) + geo.Equirectangular(b, r.g.Point(v))
	if u == v {
		return access
	}
	return access + r.nodeDist(int32(u), int32(v))
}

func (r *Router) nodeDist(u, v int32) float64 {
	key := [2]int32{u, v}
	r.mu.Lock()
	if d, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return d
	}
	r.mu.Unlock()

	d, _ := r.g.AStar(int(u), int(v))
	r.mu.Lock()
	r.cache[key] = d
	r.mu.Unlock()
	return d
}

// CacheSize returns the number of memoized node pairs (for tests and
// capacity planning).
func (r *Router) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// Circuity estimates the network's mean circuity (network distance over
// straight-line distance) by sampling n random node pairs with the
// given deterministic stride. Used by tests to assert realism.
func (r *Router) Circuity(samples int) float64 {
	n := r.g.NumNodes()
	if n < 2 || samples < 1 {
		return 1
	}
	var sum float64
	var count int
	for i := 0; i < samples; i++ {
		u := (i * 7919) % n
		v := (i*104729 + 13) % n
		if u == v {
			continue
		}
		crow := geo.Equirectangular(r.g.Point(u), r.g.Point(v))
		if crow < 0.2 {
			continue
		}
		net := r.nodeDist(int32(u), int32(v))
		sum += net / crow
		count++
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}
