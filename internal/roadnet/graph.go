// Package roadnet provides a street-network routing substrate for the
// market framework. The paper estimates inter-task travel distances from
// trip trajectories; straight-line distance understates urban driving
// distance by the network's circuity (~1.2–1.4× in practice). This
// package supplies weighted road graphs, shortest-path routing
// (Dijkstra and A*), synthetic city-network generators, and a cached
// Router that plugs into model.Market.Dist so every cost and travel-time
// estimate in the framework can be network-accurate instead of
// crow-fly.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
)

// halfEdge is one directed adjacency entry.
type halfEdge struct {
	to int32
	km float64
}

// Graph is a directed weighted road network embedded in the plane.
// Nodes carry geographic positions; edge weights are kilometers. The
// zero value is an empty graph ready for AddNode/AddEdge.
type Graph struct {
	pts []geo.Point
	adj [][]halfEdge

	edgeCount int
}

// NumNodes returns the node count; NumEdges the directed edge count.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Point returns the position of node id.
func (g *Graph) Point(id int) geo.Point { return g.pts[id] }

// AddNode appends a node at p and returns its id.
func (g *Graph) AddNode(p geo.Point) int {
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	return len(g.pts) - 1
}

// AddEdge inserts the directed edge u→v with the given length. A
// non-positive or non-finite length, or an out-of-range endpoint,
// panics: edges come from generators, not user input.
func (g *Graph) AddEdge(u, v int, km float64) {
	if u < 0 || u >= len(g.pts) || v < 0 || v >= len(g.pts) {
		panic(fmt.Sprintf("roadnet: edge (%d,%d) out of range [0,%d)", u, v, len(g.pts)))
	}
	if km <= 0 || math.IsNaN(km) || math.IsInf(km, 0) {
		panic(fmt.Sprintf("roadnet: bad edge length %g", km))
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: int32(v), km: km})
	g.edgeCount++
}

// AddRoad inserts the two-way road u↔v with length equal to the
// straight-line distance between the endpoints scaled by factor.
func (g *Graph) AddRoad(u, v int, factor float64) {
	km := geo.Equirectangular(g.pts[u], g.pts[v]) * factor
	if km <= 0 {
		km = 1e-6 // coincident nodes: keep the metric positive
	}
	g.AddEdge(u, v, km)
	g.AddEdge(v, u, km)
}

// pqItem / pq implement the Dijkstra priority queue.
type pqItem struct {
	node int32
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst and returns the distance
// in kilometers and the node sequence. It returns +Inf and nil when dst
// is unreachable.
func (g *Graph) ShortestPath(src, dst int) (float64, []int) {
	return g.route(src, dst, nil)
}

// AStar runs A* with the straight-line-distance heuristic (admissible
// whenever edge lengths are ≥ straight-line, which AddRoad guarantees
// for factor ≥ 1). Results equal ShortestPath; it just explores less.
func (g *Graph) AStar(src, dst int) (float64, []int) {
	target := g.pts[dst]
	return g.route(src, dst, func(n int32) float64 {
		return geo.Equirectangular(g.pts[n], target)
	})
}

// route is the shared Dijkstra/A* core; h == nil means Dijkstra.
func (g *Graph) route(src, dst int, h func(int32) float64) (float64, []int) {
	if src < 0 || src >= len(g.pts) || dst < 0 || dst >= len(g.pts) {
		panic(fmt.Sprintf("roadnet: route (%d,%d) out of range [0,%d)", src, dst, len(g.pts)))
	}
	n := len(g.pts)
	dist := make([]float64, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0

	q := pq{{node: int32(src)}}
	if h != nil {
		q[0].dist = h(int32(src))
	}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if int(u) == dst {
			break
		}
		for _, e := range g.adj[u] {
			if done[e.to] {
				continue
			}
			nd := dist[u] + e.km
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = u
				key := nd
				if h != nil {
					key += h(e.to)
				}
				heap.Push(&q, pqItem{node: e.to, dist: key})
			}
		}
	}

	if math.IsInf(dist[dst], 1) {
		return math.Inf(1), nil
	}
	var path []int
	for v := int32(dst); v != -1; v = prev[v] {
		path = append(path, int(v))
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[dst], path
}

// DistancesFrom runs a full single-source Dijkstra and returns the
// distance to every node (+Inf where unreachable). Used to build
// distance matrices and by the connectivity checks.
func (g *Graph) DistancesFrom(src int) []float64 {
	if src < 0 || src >= len(g.pts) {
		panic(fmt.Sprintf("roadnet: source %d out of range [0,%d)", src, len(g.pts)))
	}
	n := len(g.pts)
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := pq{{node: int32(src)}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.km; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(&q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// StronglyConnected reports whether every node reaches every other.
// Two BFS-style sweeps (forward from 0, and forward on the transpose)
// suffice.
func (g *Graph) StronglyConnected() bool {
	n := len(g.pts)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	reach := func(adj [][]halfEdge) int {
		for i := range seen {
			seen[i] = false
		}
		stack := []int32{0}
		seen[0] = true
		count := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, e := range adj[u] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		return count
	}
	if reach(g.adj) != n {
		return false
	}
	// Transpose adjacency.
	tr := make([][]halfEdge, n)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			tr[e.to] = append(tr[e.to], halfEdge{to: int32(u), km: e.km})
		}
	}
	return reach(tr) == n
}
