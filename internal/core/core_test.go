package core

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/online"
	"repro/internal/taskmap"
	"repro/internal/trace"
)

func buildProblem(t *testing.T, seed int64, tasks, drivers int, dm trace.DriverModel) *Problem {
	t.Helper()
	cfg := trace.NewConfig(seed, tasks, drivers, dm)
	tr := trace.NewGenerator(cfg).Generate(nil)
	p, err := NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestGreedySolverValidSolution(t *testing.T) {
	p := buildProblem(t, 1, 80, 12, trace.Hitchhiking)
	sol, err := GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Algorithm != "Greedy" {
		t.Errorf("Algorithm = %q", sol.Algorithm)
	}
	if sol.Profit <= 0 {
		t.Errorf("profit = %.3f, want > 0", sol.Profit)
	}
	if sol.Served == 0 || sol.Revenue <= 0 {
		t.Errorf("served=%d revenue=%.3f", sol.Served, sol.Revenue)
	}
	if err := p.CheckOffline(sol); err != nil {
		t.Errorf("CheckOffline: %v", err)
	}
}

func TestGreedyNaiveSolverAgrees(t *testing.T) {
	p := buildProblem(t, 2, 60, 10, trace.HomeWorkHome)
	lazy, err := GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := GreedySolver{Naive: true}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lazy.Profit-naive.Profit) > 1e-6 {
		t.Fatalf("lazy %.6f != naive %.6f", lazy.Profit, naive.Profit)
	}
	if naive.Algorithm != "Greedy(naive)" {
		t.Errorf("Algorithm = %q", naive.Algorithm)
	}
}

func TestOnlineSolvers(t *testing.T) {
	p := buildProblem(t, 3, 100, 15, trace.Hitchhiking)
	for _, s := range []Solver{
		OnlineSolver{Dispatcher: online.Nearest{}, Seed: 1},
		OnlineSolver{Dispatcher: online.MaxMargin{}, Seed: 1},
		OnlineSolver{Dispatcher: online.MaxMargin{}, Seed: 1, ByValue: true},
	} {
		sol, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Online == nil {
			t.Fatalf("%s: missing simulator result", s.Name())
		}
		if sol.Served != sol.Online.Served {
			t.Fatalf("%s: served mismatch", s.Name())
		}
		if err := p.CheckDisjoint(sol); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestOnlineSolverByValueName(t *testing.T) {
	s := OnlineSolver{Dispatcher: online.MaxMargin{}, ByValue: true}
	if got := s.Name(); got != "maxMargin(by-value)" {
		t.Errorf("Name() = %q", got)
	}
}

func TestGreedyBeatsOnlineHeuristics(t *testing.T) {
	// §VI-B: "our offline deterministic algorithm has the best
	// performance". Aggregate over seeds.
	var greedy, mm, nr float64
	for seed := int64(0); seed < 4; seed++ {
		p := buildProblem(t, seed, 100, 15, trace.Hitchhiking)
		g, err := GreedySolver{}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := OnlineSolver{Dispatcher: online.MaxMargin{}, Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		n, err := OnlineSolver{Dispatcher: online.Nearest{}, Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		greedy += g.Profit
		mm += m.Profit
		nr += n.Profit
	}
	if greedy < mm || greedy < nr {
		t.Fatalf("greedy %.1f should dominate online heuristics (maxMargin %.1f, nearest %.1f)",
			greedy, mm, nr)
	}
}

func TestWelfareProblem(t *testing.T) {
	p := buildProblem(t, 5, 40, 8, trace.Hitchhiking)
	w := p.WelfareProblem()
	for i := range w.Tasks {
		if w.Tasks[i].Price != p.Tasks[i].WTP {
			t.Fatalf("task %d: welfare price %.3f != WTP %.3f", i, w.Tasks[i].Price, p.Tasks[i].WTP)
		}
		if p.Tasks[i].Price == p.Tasks[i].WTP {
			continue
		}
	}
	// Original problem untouched.
	if p.Tasks[0].Price == p.Tasks[0].WTP && p.Tasks[0].Surplus() != 0 {
		t.Fatal("WelfareProblem mutated the original")
	}
	// Solving the welfare view maximizes Eq. (6): profit there equals
	// welfare of the found assignment evaluated on the original.
	ws, err := GreedySolver{}.Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	manual := ws.Profit // profit under b_m pricing
	// Recompute: profit under p_m + surplus of served tasks must equal
	// the welfare objective value for the same assignment.
	var surplus float64
	var profitOrig float64
	gOrig := p.Graph()
	for _, path := range ws.Paths {
		pr, err := gOrig.PathProfit(path.Driver, path.Tasks)
		if err != nil {
			t.Fatal(err)
		}
		profitOrig += pr
		for _, task := range path.Tasks {
			surplus += p.Tasks[task].Surplus()
		}
	}
	if math.Abs(profitOrig+surplus-manual) > 1e-6 {
		t.Fatalf("welfare identity broken: profit %.6f + surplus %.6f != %.6f",
			profitOrig, surplus, manual)
	}
}

func TestSolutionWelfareAccessor(t *testing.T) {
	p := buildProblem(t, 6, 50, 8, trace.Hitchhiking)
	sol, err := GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	w := sol.Welfare(p)
	if w < sol.Profit-1e-9 {
		t.Fatalf("welfare %.6f below profit %.6f (surplus is non-negative)", w, sol.Profit)
	}
}

func TestCheckDisjointCatchesDuplicates(t *testing.T) {
	p := buildProblem(t, 7, 20, 4, trace.Hitchhiking)
	bad := Solution{Paths: []taskmap.Path{
		{Driver: 0, Tasks: []int{1, 2}},
		{Driver: 1, Tasks: []int{2}},
	}}
	if err := p.CheckDisjoint(bad); err == nil {
		t.Fatal("duplicate task assignment not caught")
	}
	bad2 := Solution{Paths: []taskmap.Path{
		{Driver: 0, Tasks: []int{1}},
		{Driver: 0, Tasks: []int{2}},
	}}
	if err := p.CheckDisjoint(bad2); err == nil {
		t.Fatal("duplicate driver not caught")
	}
	bad3 := Solution{Paths: []taskmap.Path{{Driver: 99, Tasks: []int{1}}}}
	if err := p.CheckDisjoint(bad3); err == nil {
		t.Fatal("out-of-range driver not caught")
	}
	bad4 := Solution{Paths: []taskmap.Path{{Driver: 0, Tasks: []int{999}}}}
	if err := p.CheckDisjoint(bad4); err == nil {
		t.Fatal("out-of-range task not caught")
	}
}

func TestCheckOfflineCatchesProfitLies(t *testing.T) {
	p := buildProblem(t, 8, 40, 8, trace.Hitchhiking)
	sol, err := GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Paths) == 0 {
		t.Skip("no paths selected")
	}
	sol.Paths[0].Profit += 5
	if err := p.CheckOffline(sol); err == nil {
		t.Fatal("inflated profit not caught")
	}
}

func TestPerformanceRatio(t *testing.T) {
	if got := PerformanceRatio(50, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ratio = %g, want 0.5", got)
	}
	if got := PerformanceRatio(50, 0); got != 0 {
		t.Errorf("zero bound: %g, want 0", got)
	}
	if got := PerformanceRatio(-1, 100); got != 0 {
		t.Errorf("negative profit: %g, want 0", got)
	}
}

func TestPerformanceRatioAgainstExactBound(t *testing.T) {
	// Greedy's ratio against Z*_f must be within (0, 1].
	p := buildProblem(t, 9, 30, 6, trace.Hitchhiking)
	sol, err := GreedySolver{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	cg, _, err := bound.ColumnGeneration(p.Graph())
	if err != nil {
		t.Fatal(err)
	}
	r := PerformanceRatio(sol.Profit, cg.Bound)
	if r <= 0 || r > 1+1e-9 {
		t.Fatalf("ratio %.6f outside (0, 1]", r)
	}
}

func TestNewProblemRejectsInvalid(t *testing.T) {
	cfg := trace.NewConfig(1, 5, 2, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Tasks[0].Price = tr.Tasks[0].WTP + 1 // violates p ≤ b
	if _, err := NewProblem(cfg.Market, tr.Drivers, tr.Tasks); err == nil {
		t.Fatal("NewProblem accepted price > WTP")
	}
}

func TestGraphCached(t *testing.T) {
	p := buildProblem(t, 10, 20, 4, trace.Hitchhiking)
	if p.Graph() != p.Graph() {
		t.Fatal("Graph() should cache")
	}
}
