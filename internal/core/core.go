// Package core is the optimization framework of the paper: it bundles a
// market instance (drivers, tasks, cost model) into a Problem, exposes
// the two objectives of §III — drivers' profit maximization (Eq. 4) and
// social welfare maximization (Eq. 6) — and runs offline and online
// solvers against them under a common Solution contract with full
// constraint validation (Eqs. 5a–5h, 7a).
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/taskmap"
)

// Problem is one market optimization instance. Construct with
// NewProblem; the task-map graph is built lazily and cached.
type Problem struct {
	Market  model.Market
	Drivers []model.Driver
	Tasks   []model.Task

	graph *taskmap.Graph
}

// NewProblem validates and bundles a market instance.
func NewProblem(m model.Market, drivers []model.Driver, tasks []model.Task) (*Problem, error) {
	if err := model.ValidateAll(m, drivers, tasks); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Problem{
		Market:  m,
		Drivers: append([]model.Driver(nil), drivers...),
		Tasks:   append([]model.Task(nil), tasks...),
	}, nil
}

// Graph returns the merged task map (§III-B), building it on first use.
func (p *Problem) Graph() *taskmap.Graph {
	if p.graph == nil {
		g, err := taskmap.New(p.Market, p.Drivers, p.Tasks)
		if err != nil {
			// NewProblem validated the same inputs; reaching here is a
			// programming error.
			panic(fmt.Sprintf("core: task map construction failed on validated problem: %v", err))
		}
		p.graph = g
	}
	return p.graph
}

// WelfareProblem returns the social-welfare view of the problem
// (§III-D): identical except every task's payoff is replaced by the
// customer's willingness-to-pay b_m. Running any drivers'-profit solver
// on the returned problem maximizes Eq. (6), exactly as §III-E
// prescribes ("we can use the same algorithms ... to solve the social
// welfare maximization problem").
func (p *Problem) WelfareProblem() *Problem {
	tasks := append([]model.Task(nil), p.Tasks...)
	for i := range tasks {
		tasks[i].Price = tasks[i].WTP
	}
	return &Problem{Market: p.Market, Drivers: p.Drivers, Tasks: tasks}
}

// Solution is the common result contract of all solvers.
type Solution struct {
	Algorithm string
	// Paths holds each selected driver's task list. For online solvers
	// the per-path Profit fields are filled from the simulator's
	// real-time accounting.
	Paths []taskmap.Path
	// Profit is the drivers' total profit, objective Eq. (4).
	Profit float64
	// Revenue is Σ p_m over served tasks; Served counts them.
	Revenue float64
	Served  int
	// Online holds the full simulator result for online solvers, nil
	// for offline ones.
	Online *sim.Result
}

// Welfare returns the social-welfare value (Eq. 6) of the solution
// against the given problem: drivers' profit plus consumer surplus
// Σ (b_m − p_m) of served tasks.
func (s Solution) Welfare(p *Problem) float64 {
	w := s.Profit
	for _, path := range s.Paths {
		for _, t := range path.Tasks {
			w += p.Tasks[t].Surplus()
		}
	}
	return w
}

// Solver produces a Solution for a Problem.
type Solver interface {
	Name() string
	Solve(p *Problem) (Solution, error)
}

// GreedySolver runs the offline greedy algorithm GA (§IV, Algorithm 1).
// Naive selects the textbook O(N²M²) reference implementation instead of
// the lazy-evaluation one; both produce a greedy-optimal sequence.
type GreedySolver struct {
	Naive bool
}

var _ Solver = GreedySolver{}

// Name implements Solver.
func (g GreedySolver) Name() string {
	if g.Naive {
		return "Greedy(naive)"
	}
	return "Greedy"
}

// Solve implements Solver.
func (g GreedySolver) Solve(p *Problem) (Solution, error) {
	var res offline.Solution
	if g.Naive {
		res = offline.GreedyNaive(p.Graph())
	} else {
		res = offline.Greedy(p.Graph())
	}
	sol := Solution{
		Algorithm: g.Name(),
		Paths:     res.Paths,
		Profit:    res.TotalProfit,
		Served:    res.ServedTasks(),
	}
	for _, path := range res.Paths {
		for _, t := range path.Tasks {
			sol.Revenue += p.Tasks[t].Price
		}
	}
	if err := p.CheckOffline(sol); err != nil {
		return Solution{}, fmt.Errorf("core: greedy produced invalid solution: %w", err)
	}
	return sol, nil
}

// OnlineSolver adapts a sim.Dispatcher to the Solver interface, running
// the online market simulation in task publish order (or by descending
// price when ByValue is set — the offline variant of §V-B).
type OnlineSolver struct {
	Dispatcher sim.Dispatcher
	Seed       int64
	ByValue    bool

	// Shards > 1 dispatches through the zone-sharded candidate source.
	// Results are bit-identical to the default sequential scan (a
	// differential-test guarantee of the sim package); only throughput
	// changes.
	Shards int
}

var _ Solver = OnlineSolver{}

// Name implements Solver.
func (o OnlineSolver) Name() string {
	name := o.Dispatcher.Name()
	if o.ByValue {
		name += "(by-value)"
	}
	return name
}

// Solve implements Solver.
func (o OnlineSolver) Solve(p *Problem) (Solution, error) {
	eng, err := sim.New(p.Market, p.Drivers, o.Seed)
	if err != nil {
		return Solution{}, err
	}
	if o.Shards > 1 {
		eng.SetCandidateSource(sim.NewShardedSource(o.Shards))
	}
	var res sim.Result
	if o.ByValue {
		res = eng.RunByValue(p.Tasks, o.Dispatcher)
	} else {
		res = eng.Run(p.Tasks, o.Dispatcher)
	}
	sol := Solution{
		Algorithm: o.Name(),
		Profit:    res.TotalProfit,
		Revenue:   res.Revenue,
		Served:    res.Served,
		Online:    &res,
	}
	for n, tasks := range res.DriverPaths {
		if len(tasks) == 0 {
			continue
		}
		sol.Paths = append(sol.Paths, taskmap.Path{
			Driver: n,
			Tasks:  append([]int(nil), tasks...),
			Profit: res.PerDriverProfit[n],
		})
	}
	if err := p.CheckDisjoint(sol); err != nil {
		return Solution{}, fmt.Errorf("core: online solver produced invalid solution: %w", err)
	}
	return sol, nil
}

// CheckDisjoint verifies the constraints every solution — offline or
// online — must satisfy: each task assigned to at most one driver
// (Eq. 5a), at most one task list per driver (Eq. 10a), and task indices
// in range.
func (p *Problem) CheckDisjoint(s Solution) error {
	seenDriver := make(map[int]bool)
	seenTask := make(map[int]bool)
	for _, path := range s.Paths {
		if path.Driver < 0 || path.Driver >= len(p.Drivers) {
			return fmt.Errorf("driver index %d out of range", path.Driver)
		}
		if seenDriver[path.Driver] {
			return fmt.Errorf("driver %d has multiple task lists", path.Driver)
		}
		seenDriver[path.Driver] = true
		for _, t := range path.Tasks {
			if t < 0 || t >= len(p.Tasks) {
				return fmt.Errorf("task index %d out of range", t)
			}
			if seenTask[t] {
				return fmt.Errorf("task %d assigned twice (violates Eq. 5a)", t)
			}
			seenTask[t] = true
		}
	}
	return nil
}

// CheckOffline verifies the full offline model: CheckDisjoint plus, for
// every path, flow feasibility in the driver's task map (Eqs. 5c–5f via
// arc-by-arc reconstruction), agreement of the declared profit with the
// ground-truth valuation, and individual rationality (Eq. 5b).
func (p *Problem) CheckOffline(s Solution) error {
	if err := p.CheckDisjoint(s); err != nil {
		return err
	}
	g := p.Graph()
	for _, path := range s.Paths {
		profit, err := g.PathProfit(path.Driver, path.Tasks)
		if err != nil {
			return fmt.Errorf("driver %d: %w", path.Driver, err)
		}
		if diff := profit - path.Profit; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("driver %d: declared profit %.9f, recomputed %.9f", path.Driver, path.Profit, profit)
		}
		if profit < -1e-9 {
			return fmt.Errorf("driver %d: negative profit %.9f violates individual rationality (Eq. 5b)", path.Driver, profit)
		}
	}
	return nil
}

// PerformanceRatio returns profit / upperBound ∈ [0, 1]: the fraction of
// the relaxation bound Z*_f an algorithm attains. The paper's §VI-B
// reports the reciprocal (Z*_f divided by achieved profit); we report
// the bounded form so that "higher is better" and curves stay in [0,1].
func PerformanceRatio(profit, upperBound float64) float64 {
	if upperBound <= 0 {
		return 0
	}
	if profit < 0 {
		return 0
	}
	return profit / upperBound
}
