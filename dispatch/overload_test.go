package dispatch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// overloadMarket builds a small hand-placed market for admission tests.
func overloadMarket() Market {
	base := Point{Lat: 41.15, Lon: -8.61}
	near := func(dlat, dlon float64) Point { return Point{Lat: base.Lat + dlat, Lon: base.Lon + dlon} }
	var drivers []Driver
	for i := 0; i < 4; i++ {
		drivers = append(drivers, Driver{
			ID: 100 + i, Source: near(0.001*float64(i), 0), Dest: near(0.02, 0.02),
			Start: 0, End: 7200,
		})
	}
	return Market{Drivers: drivers}
}

func overloadTask(id int, publish float64) Task {
	base := Point{Lat: 41.15, Lon: -8.61}
	return Task{
		ID: id, Publish: publish,
		Source:  Point{Lat: base.Lat + 0.001, Lon: base.Lon},
		Dest:    Point{Lat: base.Lat + 0.01, Lon: base.Lon + 0.01},
		StartBy: publish + 900, EndBy: publish + 4500, Price: 10,
	}
}

func TestWithMaxPendingValidation(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := New(overloadMarket(), WithMaxPending(n)); !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("WithMaxPending(%d): err = %v, want ErrInvalidOption", n, err)
		}
	}
}

// TestBatchedAdmissionBound drives a batched service into its
// WithMaxPending bound: the window fills to the cap, the next
// submission is shed with ErrOverloaded, and a submission that closes
// the window is admitted regardless — a full window can never wedge
// the market. The shed submission stays outside the books.
func TestBatchedAdmissionBound(t *testing.T) {
	ctx := context.Background()
	svc, err := New(overloadMarket(), WithBatching(60, Hungarian), WithMaxPending(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a, err := svc.SubmitTask(ctx, overloadTask(i, float64(i)))
		if err != nil {
			t.Fatalf("SubmitTask(%d): %v", i, err)
		}
		if !a.Pending {
			t.Fatalf("SubmitTask(%d): not pending: %+v", i, a)
		}
	}
	// The window [0, 60) holds 3 undecided orders: the cap.
	if _, err := svc.SubmitTask(ctx, overloadTask(3, 3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submission over cap: err = %v, want ErrOverloaded", err)
	}
	snap, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pending != 3 || snap.Shed != 1 || snap.MaxPending != 3 || snap.Tasks != 3 {
		t.Fatalf("snapshot after shed: %+v", snap)
	}
	// A shed ID was never registered, so it may be resubmitted later.
	if _, err := svc.SubmitTask(ctx, overloadTask(3, 3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("retry while still full: err = %v, want ErrOverloaded", err)
	}

	// A submission at the window close drains the window first and is
	// admitted even though the window it finds is at the cap.
	a, err := svc.SubmitTask(ctx, overloadTask(4, 60))
	if err != nil {
		t.Fatalf("window-closing submission shed: %v", err)
	}
	if !a.Pending {
		t.Fatalf("window-closing submission: %+v", a)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 4 {
		t.Fatalf("final Tasks = %d, want 4 (sheds excluded)", stats.Tasks)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != stats.Tasks {
		t.Fatalf("books do not balance: %+v", stats)
	}
	if stats.Shed != 2 {
		t.Fatalf("final Shed = %d, want 2", stats.Shed)
	}
}

// gateClock blocks inside Advance while armed, holding its caller (and
// the service mutex) in the middle of a decision so a test can pile a
// second submission on top deterministically.
type gateClock struct {
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (c *gateClock) Advance(from, to float64) {
	if !c.armed.Load() {
		return
	}
	c.entered <- struct{}{}
	<-c.release
}

// TestInstantAdmissionInflight pins an instant service mid-decision
// with a blocking clock and proves the in-flight bound sheds the next
// submission without waiting for the mutex.
func TestInstantAdmissionInflight(t *testing.T) {
	ctx := context.Background()
	clk := &gateClock{entered: make(chan struct{}), release: make(chan struct{})}
	svc, err := New(overloadMarket(), WithMaxPending(1), WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	// First submission starts the market clock; the gate is not armed,
	// so it decides immediately.
	if _, err := svc.SubmitTask(ctx, overloadTask(0, 0)); err != nil {
		t.Fatal(err)
	}

	clk.armed.Store(true)
	done := make(chan error, 1)
	go func() {
		_, err := svc.SubmitTask(ctx, overloadTask(1, 10))
		done <- err
	}()
	<-clk.entered // submission 1 is now mid-decision, in flight

	if _, err := svc.SubmitTask(ctx, overloadTask(2, 11)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submission over in-flight cap: err = %v, want ErrOverloaded", err)
	}

	clk.armed.Store(false)
	clk.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("in-flight submission failed: %v", err)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 2 || stats.Shed != 1 {
		t.Fatalf("final stats %+v, want 2 tasks and 1 shed", stats)
	}
	if stats.Served+stats.Rejected+stats.Cancelled+stats.Pending != stats.Tasks {
		t.Fatalf("books do not balance: %+v", stats)
	}
}

// TestFeedGapNotice drives a tiny subscriber buffer to overflow and
// checks the drop contract: every drop is counted in Stats.FeedDrops,
// and the next delivery that fits is preceded by an EventGap entry
// carrying the run length.
func TestFeedGapNotice(t *testing.T) {
	ctx := context.Background()
	svc, err := New(overloadMarket())
	if err != nil {
		t.Fatal(err)
	}
	feed, cancel := svc.Subscribe(2)
	defer cancel()

	// Two decisions fill the buffer; two more overflow it (the second
	// overflow cannot even fit its gap notice).
	for i := 0; i < 4; i++ {
		if _, err := svc.SubmitTask(ctx, overloadTask(i, float64(i))); err != nil {
			t.Fatalf("SubmitTask(%d): %v", i, err)
		}
	}
	snap, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FeedDrops != 2 {
		t.Fatalf("FeedDrops = %d, want 2", snap.FeedDrops)
	}

	// Drain the two buffered decisions, making room for the gap notice.
	for i := 0; i < 2; i++ {
		ev := <-feed
		if ev.Type == EventGap {
			t.Fatalf("premature gap notice: %+v", ev)
		}
		if ev.TaskID != i {
			t.Fatalf("event %d: task %d, want %d", i, ev.TaskID, i)
		}
	}

	// The next decision is preceded by the gap notice for the 2-drop run.
	if _, err := svc.SubmitTask(ctx, overloadTask(4, 4)); err != nil {
		t.Fatal(err)
	}
	gap := <-feed
	if gap.Type != EventGap || gap.Dropped != 2 {
		t.Fatalf("gap notice = %+v, want EventGap with Dropped=2", gap)
	}
	ev := <-feed
	if ev.Type == EventGap || ev.TaskID != 4 {
		t.Fatalf("post-gap event = %+v, want task 4's decision", ev)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FeedDrops != 2 {
		t.Fatalf("final FeedDrops = %d, want 2", stats.FeedDrops)
	}
}
