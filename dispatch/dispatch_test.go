package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pubDriver converts a trace driver to the public type, registering the
// engine index as the public ID so replays can address both sides with
// the same numbers.
func pubDriver(i int, d model.Driver, joinAt float64) Driver {
	return Driver{
		ID: i, Source: Point(d.Source), Dest: Point(d.Dest),
		Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh, JoinAt: joinAt,
	}
}

func pubTask(i int, t model.Task) Task {
	return Task{
		ID: i, Publish: t.Publish, Source: Point(t.Source), Dest: Point(t.Dest),
		StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
	}
}

// replayTrace feeds a whole trace through a fresh Service in the
// canonical merge order — ascending time, retirements before
// cancellations before arrivals at one instant, original order within a
// kind — and returns the service after Close. Joins ride in as each
// driver's JoinAt.
func replayTrace(t *testing.T, tr model.Trace, opts ...Option) *Service {
	t.Helper()
	joinAt := make(map[int]float64)
	type item struct {
		at     float64
		rank   int
		isTask bool
		idx    int // task index (arrival, cancel) or driver index (retire)
		kind   model.EventKind
	}
	var feed []item
	for _, ev := range tr.Events {
		switch ev.Kind {
		case model.EventJoin:
			joinAt[ev.Driver] = ev.At
		case model.EventRetire:
			feed = append(feed, item{at: ev.At, rank: 1, idx: ev.Driver, kind: ev.Kind})
		case model.EventCancel:
			feed = append(feed, item{at: ev.At, rank: 2, idx: ev.Task, kind: ev.Kind})
		}
	}
	for i := range tr.Tasks {
		feed = append(feed, item{at: tr.Tasks[i].Publish, rank: 5, isTask: true, idx: i})
	}
	sort.SliceStable(feed, func(a, b int) bool {
		if feed[a].at != feed[b].at {
			return feed[a].at < feed[b].at
		}
		return feed[a].rank < feed[b].rank
	})

	m := Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, pubDriver(i, d, joinAt[i]))
	}
	svc, err := New(m, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for _, it := range feed {
		switch {
		case it.isTask:
			if _, err := svc.SubmitTask(ctx, pubTask(it.idx, tr.Tasks[it.idx])); err != nil {
				t.Fatalf("SubmitTask(%d): %v", it.idx, err)
			}
		case it.kind == model.EventRetire:
			if err := svc.RetireDriver(ctx, it.idx, it.at); err != nil {
				t.Fatalf("RetireDriver(%d): %v", it.idx, err)
			}
		default:
			if _, err := svc.CancelTask(ctx, it.idx, it.at); err != nil {
				t.Fatalf("CancelTask(%d): %v", it.idx, err)
			}
		}
	}
	return svc
}

// TestServiceReplayBitIdenticalToBatch is the package's differential
// contract: submitting a generated day — churn and cancellations
// included — event by event through the public Service produces a final
// result bit-identical to Engine.RunScenario replaying the same trace
// in one call, for every policy and shard count.
func TestServiceReplayBitIdenticalToBatch(t *testing.T) {
	const seed = 11
	policies := []struct {
		p Policy
		d sim.Dispatcher
	}{
		{MaxMargin, online.MaxMargin{}},
		{Nearest, online.Nearest{}},
		{Random, online.Random{}},
	}
	scenarios := []struct {
		drivers, tasks int
		churn, cancel  float64
	}{
		{30, 150, 0, 0},
		{30, 150, 0.5, 0.4},
	}
	for si, sc := range scenarios {
		cfg := trace.NewConfig(int64(40+si), sc.tasks, sc.drivers, trace.Hitchhiking)
		tr := trace.NewGenerator(cfg).Generate(nil)
		if sc.churn > 0 || sc.cancel > 0 {
			tr.Events = trace.WithChurn(tr, trace.DefaultChurn(int64(si), sc.churn, sc.cancel))
		}
		for _, pol := range policies {
			for _, shards := range []int{1, 2, 4} {
				name := fmt.Sprintf("s%d/%v/shards=%d", si, pol.p, shards)
				t.Run(name, func(t *testing.T) {
					eng, err := sim.New(cfg.Market, tr.Drivers, seed)
					if err != nil {
						t.Fatal(err)
					}
					if shards > 1 {
						eng.SetCandidateSource(sim.NewShardedSource(shards))
					}
					batch := eng.RunScenario(tr.Tasks, tr.Events, pol.d)

					svc := replayTrace(t, tr,
						WithDispatcher(pol.p), WithShards(shards), WithSeed(seed), WithStrictTimes())
					stats, err := svc.Close()
					if err != nil {
						t.Fatal(err)
					}
					if svc.final == nil {
						t.Fatal("service kept no final result")
					}
					if !reflect.DeepEqual(batch, *svc.final) {
						t.Fatalf("service replay diverged from batch:\nbatch:   served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f\nservice: served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f",
							batch.Served, batch.Rejected, batch.Cancelled, batch.Revenue, batch.TotalProfit,
							stats.Served, stats.Rejected, stats.Cancelled, stats.Revenue, stats.Profit)
					}
					if stats.Served != batch.Served || stats.Revenue != batch.Revenue {
						t.Fatalf("Close stats disagree with result: %+v vs served=%d revenue=%g",
							stats, batch.Served, batch.Revenue)
					}
				})
			}
		}
	}
}

// TestServiceTypedErrors pins the error contract callers program
// against.
func TestServiceTypedErrors(t *testing.T) {
	ctx := context.Background()
	cfg := trace.NewConfig(3, 20, 5, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	m := Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, pubDriver(i, d, 0))
	}

	if _, err := New(m, WithShards(0)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("WithShards(0): %v", err)
	}
	if _, err := New(Market{Drivers: []Driver{m.Drivers[0], m.Drivers[0]}}); !errors.Is(err, ErrDuplicateDriver) {
		t.Errorf("duplicate initial driver: %v", err)
	}
	bad := m.Drivers[0]
	bad.ID, bad.End = 99, bad.Start // empty working window
	if _, err := New(Market{Drivers: []Driver{bad}}); !errors.Is(err, ErrInvalidDriver) {
		t.Errorf("invalid driver: %v", err)
	}

	svc, err := New(m, WithStrictTimes())
	if err != nil {
		t.Fatal(err)
	}
	task := pubTask(0, tr.Tasks[0])
	if _, err := svc.SubmitTask(ctx, task); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTask(ctx, task); !errors.Is(err, ErrDuplicateTask) {
		t.Errorf("duplicate task: %v", err)
	}
	badTask := pubTask(1, tr.Tasks[1])
	badTask.StartBy = badTask.Publish // violates publish < startBy
	if _, err := svc.SubmitTask(ctx, badTask); !errors.Is(err, ErrInvalidTask) {
		t.Errorf("invalid task: %v", err)
	}
	if _, err := svc.CancelTask(ctx, 12345, task.StartBy); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task cancel: %v", err)
	}
	if err := svc.RetireDriver(ctx, 12345, task.Publish); !errors.Is(err, ErrUnknownDriver) {
		t.Errorf("unknown driver retire: %v", err)
	}

	// Strict ordering: anything before the decision time of task 0 is
	// out of order now.
	late := pubTask(7, tr.Tasks[1])
	late.Publish = task.Publish - 1
	if _, err := svc.SubmitTask(ctx, late); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order submit: %v", err)
	}

	// A cancelled context is honored before any market mutation.
	dead, kill := context.WithCancel(ctx)
	kill()
	if _, e := svc.Snapshot(dead); !errors.Is(e, context.Canceled) {
		t.Errorf("cancelled context: %v", e)
	}
	if _, e := svc.SubmitTask(dead, pubTask(9, tr.Tasks[3])); !errors.Is(e, context.Canceled) {
		t.Errorf("cancelled context submit: %v", e)
	}

	if _, err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTask(ctx, pubTask(8, tr.Tasks[2])); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v", err)
	}
	if stats, err := svc.Close(); err != nil || stats.Tasks != 1 {
		t.Errorf("second close: %+v, %v", stats, err)
	}
}

// TestServiceFeedAndChurn drives joins, retirements, revocations and
// the subscription feed through one small scripted market.
func TestServiceFeedAndChurn(t *testing.T) {
	ctx := context.Background()
	base := Point{Lat: 41.15, Lon: -8.61}
	near := func(dlat, dlon float64) Point { return Point{Lat: base.Lat + dlat, Lon: base.Lon + dlon} }
	svc, err := New(Market{Drivers: []Driver{
		{ID: 100, Source: base, Dest: near(0.02, 0.02), Start: 0, End: 7200},
	}})
	if err != nil {
		t.Fatal(err)
	}
	feed, cancel := svc.Subscribe(16)
	defer cancel()

	task := Task{ID: 1, Publish: 100, Source: near(0.001, 0), Dest: near(0.01, 0.01),
		StartBy: 700, EndBy: 3600, Price: 10}
	a, err := svc.SubmitTask(ctx, task)
	if err != nil || !a.Assigned || a.DriverID != 100 {
		t.Fatalf("assignment %+v, %v", a, err)
	}
	if a.PickupBy <= 100 || a.PickupBy > 700 {
		t.Fatalf("pickup estimate %g outside (100, 700]", a.PickupBy)
	}

	// Rider cancels before the pickup: the assignment is revoked.
	out, err := svc.CancelTask(ctx, 1, a.PickupBy-1)
	if err != nil || !out.Cancelled || out.FreedDriverID != 100 {
		t.Fatalf("cancel outcome %+v, %v", out, err)
	}
	// Cancelling again is moot.
	if out2, _ := svc.CancelTask(ctx, 1, a.PickupBy); out2.Cancelled {
		t.Fatalf("double cancel honored: %+v", out2)
	}

	// The books balance even while the revocation's driver-free event is
	// still queued (no further submission has forced it yet): the
	// revoked assignment is not counted as served, nor its fare as
	// revenue.
	mid, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Served != 0 || mid.Cancelled != 1 || mid.Revenue != 0 {
		t.Fatalf("snapshot with pending revocation: %+v", mid)
	}
	if mid.Served+mid.Rejected+mid.Cancelled != mid.Tasks {
		t.Fatalf("books do not balance mid-revocation: %+v", mid)
	}

	// The freed driver retires; a new driver joins and serves the next task.
	if err := svc.RetireDriver(ctx, 100, 800); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddDriver(ctx, Driver{ID: 200, Source: base, Dest: near(0.02, 0.02),
		Start: 0, End: 7200, JoinAt: 900}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddDriver(ctx, Driver{ID: 200, Source: base, Dest: base,
		Start: 0, End: 7200}); !errors.Is(err, ErrDuplicateDriver) {
		t.Fatalf("duplicate present driver: %v", err)
	}
	a2, err := svc.SubmitTask(ctx, Task{ID: 2, Publish: 1000, Source: near(0.001, 0),
		Dest: near(0.01, 0.01), StartBy: 1600, EndBy: 4600, Price: 10})
	if err != nil || !a2.Assigned || a2.DriverID != 200 {
		t.Fatalf("post-churn assignment %+v, %v", a2, err)
	}

	// Retired driver 100 re-enters at a future time: the announcement is
	// scheduled, so she is registered but not yet present.
	if err := svc.AddDriver(ctx, Driver{ID: 100, Source: base, Dest: near(0.02, 0.02),
		Start: 0, End: 7200, JoinAt: 1100}); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	snap, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PresentDrivers != 1 || snap.Served != 1 || snap.Cancelled != 1 {
		t.Fatalf("snapshot %+v", snap)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 1 || stats.Cancelled != 1 || stats.Rejected != 0 {
		t.Fatalf("final stats %+v", stats)
	}
	// Close drained the scheduled rejoin: both drivers ended present.
	if stats.PresentDrivers != 2 {
		t.Fatalf("final present drivers %d, want 2", stats.PresentDrivers)
	}

	want := []EventType{EventAssigned, EventCancelled, EventDriverRetired,
		EventDriverJoined, EventAssigned, EventDriverJoined}
	var got []EventType
	for ev := range feed {
		got = append(got, ev.Type)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("feed %v, want %v", got, want)
	}
}

// TestServiceConcurrentSoak hammers one service from many goroutines —
// submitters, cancellers, fleet churn, snapshot readers, a feed
// consumer — and checks the books balance afterwards. Run under -race
// this is the service's concurrency guarantee; it is skipped in short
// mode.
func TestServiceConcurrentSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		submitters = 8
		perWorker  = 150
	)
	cfg := trace.NewConfig(21, submitters*perWorker, 120, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	m := Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, pubDriver(i, d, 0))
	}
	svc, err := New(m, WithShards(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	feed, cancelSub := svc.Subscribe(4096)
	defer cancelSub()
	var consumed sync.WaitGroup
	consumed.Add(1)
	events := 0
	go func() {
		defer consumed.Done()
		for range feed {
			events++
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, submitters+2)
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; k < perWorker; k++ {
				ti := w*perWorker + k
				a, err := svc.SubmitTask(ctx, pubTask(ti, tr.Tasks[ti]))
				if err != nil {
					errs <- fmt.Errorf("submit %d: %w", ti, err)
					return
				}
				// Some riders think better of it immediately.
				if a.Assigned && rng.Float64() < 0.2 {
					if _, err := svc.CancelTask(ctx, ti, a.DecidedAt+1); err != nil {
						errs <- fmt.Errorf("cancel %d: %w", ti, err)
						return
					}
				}
			}
		}()
	}
	// Fleet churn rider: retire and re-announce a rotating driver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := i % len(m.Drivers)
			if err := svc.RetireDriver(ctx, id, 0); err != nil && !errors.Is(err, ErrUnknownDriver) {
				errs <- fmt.Errorf("retire %d: %w", id, err)
				return
			}
			d := m.Drivers[id]
			d.JoinAt = 0
			if err := svc.AddDriver(ctx, d); err != nil && !errors.Is(err, ErrDuplicateDriver) {
				errs <- fmt.Errorf("rejoin %d: %w", id, err)
				return
			}
		}
	}()
	// Snapshot reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := svc.Snapshot(ctx); err != nil {
				errs <- fmt.Errorf("snapshot: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	consumed.Wait()
	total := submitters * perWorker
	if stats.Tasks != total {
		t.Fatalf("submitted %d of %d", stats.Tasks, total)
	}
	if stats.Served+stats.Rejected+stats.Cancelled != total {
		t.Fatalf("books do not balance: %+v", stats)
	}
	if stats.Served == 0 || events == 0 {
		t.Fatalf("nothing happened: %+v, %d events", stats, events)
	}
}
