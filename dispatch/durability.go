package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/wal"
)

// This file is the durable rail: a service built WithDurability journals
// every externally-injected mutation — task submissions, cancellations,
// driver joins and retirements, wall-clock batch-window ticks, and the
// final settlement — to an append-only, checksummed write-ahead log
// BEFORE applying it, and cuts a full-state snapshot every N records so
// recovery replays a bounded suffix. Because the service is
// deterministic (same inputs in the same order produce bit-identical
// outcomes — the differential tests of this package hold that), the log
// records validated inputs, not outcomes: dispatch.Restore rebuilds the
// newest snapshot and re-drives the record suffix through the normal
// code paths, arriving at the exact served/rejected/revenue/books of
// the crashed process. The genesis record carries the market and a
// config fingerprint, so a log is self-contained: Restore takes only
// the directory.
//
// What is NOT journaled, by design: shed submissions (they error before
// the journal point and register nothing — Stats.Shed restores only as
// of the last snapshot), feed subscriptions (live connections die with
// the process), and pacing clocks (wall-clock artifacts; a restored
// service runs the default clock until the caller re-paces it).

// Record type tags, the first byte of every WAL record payload.
const (
	recInit      byte = 1 // genesis: market + config fingerprint
	recSubmit    byte = 2 // SubmitTask (admitted)
	recCancel    byte = 3 // CancelTask
	recAddDriver byte = 4 // AddDriver (new or re-entering)
	recRetire    byte = 5 // RetireDriver
	recAdvance   byte = 6 // wall-clock batch-window close tick
	recFinish    byte = 7 // Close: the day settled
)

// walRecord is the JSON body of every mutation record; which fields are
// meaningful depends on the type tag.
type walRecord struct {
	Task   *Task   `json:"task,omitempty"`   // recSubmit
	Driver *Driver `json:"driver,omitempty"` // recAddDriver
	ID     int     `json:"id,omitempty"`     // recCancel (task), recRetire (driver)
	At     float64 `json:"at,omitempty"`     // recCancel, recRetire, recAdvance
}

// configFingerprint is the durable image of a service's configuration:
// everything that shapes outcomes, nothing that doesn't (pacing clocks,
// feed buffers). Restore rebuilds the service from it and the journaled
// inputs then replay bit-identically.
type configFingerprint struct {
	Policy       string  `json:"policy"`
	Shards       int     `json:"shards"`
	MatchWorkers int     `json:"match_workers,omitempty"`
	RealTime     bool    `json:"real_time,omitempty"`
	Seed         int64   `json:"seed"`
	Strict       bool    `json:"strict,omitempty"`
	BatchWindow  float64 `json:"batch_window,omitempty"`
	BatchAlgo    string  `json:"batch_algo,omitempty"`
	MaxPending   int     `json:"max_pending,omitempty"`
	// RoadNetwork, when present, is the normalized street-graph metric
	// configuration; Restore rebuilds the identical seeded graph and
	// router from it. A caller-supplied WithDistanceFunc has no durable
	// image and is rejected at construction instead.
	RoadNetwork *RoadNetwork `json:"road_network,omitempty"`
}

func fingerprint(c config) configFingerprint {
	fp := configFingerprint{
		Policy:       c.policy.String(),
		Shards:       c.shards,
		MatchWorkers: c.matchWorkers,
		RealTime:     c.realTime,
		Seed:         c.seed,
		Strict:       c.strict,
		BatchWindow:  c.batchWindow,
		MaxPending:   c.maxPending,
	}
	if c.batchWindow > 0 {
		fp.BatchAlgo = c.batchAlgo.String()
	}
	if c.roadnet != nil {
		rn := *c.roadnet
		fp.RoadNetwork = &rn
	}
	return fp
}

// options converts the fingerprint back into constructor options.
func (fp configFingerprint) options() ([]Option, error) {
	pol, err := ParsePolicy(fp.Policy)
	if err != nil {
		return nil, fmt.Errorf("dispatch: restoring config: %w", err)
	}
	opts := []Option{WithDispatcher(pol), WithSeed(fp.Seed)}
	if fp.Shards > 1 {
		opts = append(opts, WithShards(fp.Shards))
	}
	if fp.MatchWorkers > 1 {
		opts = append(opts, WithMatchWorkers(fp.MatchWorkers))
	}
	if fp.RealTime {
		opts = append(opts, WithRealTime())
	}
	if fp.Strict {
		opts = append(opts, WithStrictTimes())
	}
	if fp.BatchWindow > 0 {
		algo, err := ParseBatchAlgorithm(fp.BatchAlgo)
		if err != nil {
			return nil, fmt.Errorf("dispatch: restoring config: %w", err)
		}
		opts = append(opts, WithBatching(fp.BatchWindow, algo))
	}
	if fp.MaxPending > 0 {
		opts = append(opts, WithMaxPending(fp.MaxPending))
	}
	if fp.RoadNetwork != nil {
		opts = append(opts, WithRoadNetwork(*fp.RoadNetwork))
	}
	return opts, nil
}

// initRecord is the genesis record's body: everything Restore needs to
// reconstruct the service before replaying a single mutation.
type initRecord struct {
	Version int               `json:"version"`
	Market  Market            `json:"market"`
	Config  configFingerprint `json:"config"`
}

// snapPayload is a snapshot file's body: the engine's captured stream
// state plus the service-level books, with the genesis copied in so a
// snapshot stays usable after the segments before it are pruned.
type snapPayload struct {
	Version   int                `json:"version"`
	Init      initRecord         `json:"init"`
	State     *sim.StreamState   `json:"state"`
	DriverIDs []int              `json:"driver_ids"`         // engine index -> public ID
	Retired   []int              `json:"retired,omitempty"`  // public IDs retired
	TaskIDs   []int              `json:"task_ids,omitempty"` // engine index -> public ID
	Decided   map[int]Assignment `json:"decided,omitempty"`
	Shed      int64              `json:"shed,omitempty"`
}

const durVersion = 1

// durConfig carries WithDurability's knobs.
type durConfig struct {
	fsync         wal.FsyncPolicy
	syncInterval  time.Duration
	segmentBytes  int64
	snapshotEvery int
	keepSnapshots int
}

func defaultDurConfig() durConfig {
	return durConfig{fsync: wal.FsyncAlways, snapshotEvery: 4096}
}

func (dc durConfig) walOptions() wal.Options {
	return wal.Options{
		Fsync:         dc.fsync,
		SyncInterval:  dc.syncInterval,
		SegmentBytes:  dc.segmentBytes,
		KeepSnapshots: dc.keepSnapshots,
	}
}

// DurOption tunes the durable rail inside WithDurability (and the
// reopened log inside Restore).
type DurOption func(*durConfig) error

// DurFsync selects when journal appends are forced to stable storage:
// "always" (every record synced before the mutation is acknowledged —
// the default, and the only policy under which a machine crash loses
// nothing), "interval" (records reach the file descriptor immediately,
// so a process kill loses nothing, and are fsynced on a timer — a
// machine crash loses at most the last interval), or "off" (the OS page
// cache decides; rotation, snapshots and shutdown still sync).
func DurFsync(mode string) DurOption {
	return func(dc *durConfig) error {
		p, err := wal.ParseFsyncPolicy(mode)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOption, err)
		}
		dc.fsync = p
		return nil
	}
}

// DurSyncInterval sets the "interval" policy's fsync period; the
// default is 100ms. It must be positive.
func DurSyncInterval(d time.Duration) DurOption {
	return func(dc *durConfig) error {
		if d <= 0 {
			return fmt.Errorf("%w: sync interval %v, want > 0", ErrInvalidOption, d)
		}
		dc.syncInterval = d
		return nil
	}
}

// DurSegmentBytes rotates log segments at roughly this size; the
// default is 64 MiB. It must be positive.
func DurSegmentBytes(n int64) DurOption {
	return func(dc *durConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: segment bytes %d, want > 0", ErrInvalidOption, n)
		}
		dc.segmentBytes = n
		return nil
	}
}

// DurSnapshotEvery cuts a full-state snapshot every n journaled records
// (default 4096), bounding crash recovery to replaying at most n
// records. It must be positive.
func DurSnapshotEvery(n int) DurOption {
	return func(dc *durConfig) error {
		if n < 1 {
			return fmt.Errorf("%w: snapshot every %d records, want ≥ 1", ErrInvalidOption, n)
		}
		dc.snapshotEvery = n
		return nil
	}
}

// DurKeepSnapshots retains the newest n snapshot files (default 2);
// older snapshots and the segments they fully cover are pruned.
func DurKeepSnapshots(n int) DurOption {
	return func(dc *durConfig) error {
		if n < 1 {
			return fmt.Errorf("%w: keep snapshots %d, want ≥ 1", ErrInvalidOption, n)
		}
		dc.keepSnapshots = n
		return nil
	}
}

// WithDurability journals the service to a write-ahead log in dir
// (created if missing; it must not already hold a log — recover an
// existing log with Restore). Every mutation is journaled before it is
// applied, under the DurFsync policy; periodic snapshots
// (DurSnapshotEvery) bound how much log a recovery replays.
func WithDurability(dir string, opts ...DurOption) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("%w: durability directory must be non-empty", ErrInvalidOption)
		}
		dc := defaultDurConfig()
		for _, o := range opts {
			if err := o(&dc); err != nil {
				return err
			}
		}
		c.durDir = dir
		c.dur = dc
		return nil
	}
}

// journal is a Service's handle on its write-ahead log.
type journal struct {
	lg            *wal.Log
	snapshotEvery int
	sinceSnap     int // records appended since the last snapshot
}

// encodeRecord frames a record payload: one type byte, then JSON.
func encodeRecord(typ byte, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encoding journal record: %w", err)
	}
	return append([]byte{typ}, body...), nil
}

// decodeRecord splits a record payload into its type tag and JSON body.
func decodeRecord(data []byte) (byte, []byte, error) {
	if len(data) == 0 {
		return 0, nil, fmt.Errorf("dispatch: empty journal record")
	}
	return data[0], data[1:], nil
}

// openJournal creates the service's write-ahead log and appends the
// genesis record. Called by New, before any traffic.
func (s *Service) openJournal() error {
	lg, err := wal.Create(s.cfg.durDir, s.cfg.dur.walOptions())
	if err != nil {
		return err
	}
	payload, err := encodeRecord(recInit, initRecord{Version: durVersion, Market: s.mkt, Config: fingerprint(s.cfg)})
	if err != nil {
		lg.Close()
		return err
	}
	if _, err := lg.Append(payload); err != nil {
		lg.Close()
		return err
	}
	s.jr = &journal{lg: lg, snapshotEvery: s.cfg.dur.snapshotEvery, sinceSnap: 1}
	return nil
}

// journal appends one mutation record, cutting a snapshot first when
// the cadence is due (the snapshot then covers exactly the records
// already applied). No-op on in-memory services. A journal error means
// the mutation was NOT made durable; callers refuse the mutation. Must
// be called with the mutex held, after validation and before applying.
func (s *Service) journal(typ byte, rec walRecord) error {
	if s.jr == nil {
		return nil
	}
	if s.jr.sinceSnap >= s.jr.snapshotEvery {
		if err := s.writeSnapshot(); err != nil {
			return err
		}
	}
	payload, err := encodeRecord(typ, rec)
	if err != nil {
		return err
	}
	if _, err := s.jr.lg.Append(payload); err != nil {
		return fmt.Errorf("dispatch: journaling: %w", err)
	}
	s.jr.sinceSnap++
	return nil
}

// writeSnapshot captures the full service state — engine stream plus
// service-level books — into a snapshot file covering every record
// appended so far. Must be called with the mutex held.
func (s *Service) writeSnapshot() error {
	st, err := s.st.CaptureState()
	if err != nil {
		return simErr(err)
	}
	snap := snapPayload{
		Version:   durVersion,
		Init:      initRecord{Version: durVersion, Market: s.mkt, Config: fingerprint(s.cfg)},
		State:     st,
		DriverIDs: s.driverIDs,
		TaskIDs:   s.taskIDs,
		Decided:   s.decided,
		Shed:      s.shed.Load(),
	}
	for id := range s.retired {
		snap.Retired = append(snap.Retired, id)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("dispatch: encoding snapshot: %w", err)
	}
	if err := s.jr.lg.WriteSnapshot(payload); err != nil {
		return fmt.Errorf("dispatch: writing snapshot: %w", err)
	}
	s.jr.sinceSnap = 0
	return nil
}

// journalFinish persists the durable shutdown: a final snapshot of the
// pre-settlement state, the finish record, and a sync of the tail
// whatever the fsync policy. Called by Close with the mutex held.
func (s *Service) journalFinish() error {
	if s.jr == nil {
		return nil
	}
	err := s.writeSnapshot()
	payload, perr := encodeRecord(recFinish, walRecord{})
	if perr != nil && err == nil {
		err = perr
	}
	if perr == nil {
		if _, aerr := s.jr.lg.Append(payload); aerr != nil && err == nil {
			err = fmt.Errorf("dispatch: journaling finish: %w", aerr)
		}
	}
	if serr := s.jr.lg.Sync(); serr != nil && err == nil {
		err = fmt.Errorf("dispatch: syncing journal: %w", serr)
	}
	return err
}

// closeJournal closes the log, folding jerr (an earlier journal error
// from the shutdown path) in front of any close error.
func (s *Service) closeJournal(jerr error) error {
	if s.jr == nil {
		return jerr
	}
	cerr := s.jr.lg.Close()
	s.jr = nil
	if jerr != nil {
		return jerr
	}
	return cerr
}

// Restore rebuilds a durable service from the write-ahead log in dir:
// it loads the newest valid snapshot (or the genesis record), replays
// the record suffix through the normal dispatch paths — arriving at
// exactly the crashed process's served/rejected/revenue/books, the
// determinism the differential crash tests in this package prove — and
// reopens the log for appending, so the restored service is durable in
// turn. DurOptions tune the reopened log (fsync policy, cadence); the
// market and dispatch configuration come from the log itself and are
// not overridable. A torn tail (crash mid-append) is truncated away; a
// complete final record failing its checksum surfaces wal.ErrCorruptTail
// (repair explicitly with wal.Repair); deeper corruption surfaces
// wal.ErrCorrupt. If the log ends in a finish record the day is
// settled: the service is returned already closed, answering Snapshot
// and Decision but no mutations.
func Restore(dir string, opts ...DurOption) (*Service, error) {
	dc := defaultDurConfig()
	for _, o := range opts {
		if err := o(&dc); err != nil {
			return nil, err
		}
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		return nil, err
	}

	var snap *snapPayload
	var init initRecord
	records := rec.Records
	if rec.Snapshot != nil {
		snap = &snapPayload{}
		if err := json.Unmarshal(rec.Snapshot, snap); err != nil {
			return nil, fmt.Errorf("dispatch: decoding snapshot: %w", err)
		}
		if snap.Version != durVersion {
			return nil, fmt.Errorf("dispatch: snapshot version %d, this build reads %d", snap.Version, durVersion)
		}
		init = snap.Init
	} else {
		if len(records) == 0 {
			return nil, fmt.Errorf("%w: log holds no genesis record", wal.ErrCorrupt)
		}
		typ, body, derr := decodeRecord(records[0].Data)
		if derr != nil || typ != recInit {
			return nil, fmt.Errorf("%w: log does not start with a genesis record", wal.ErrCorrupt)
		}
		if err := json.Unmarshal(body, &init); err != nil {
			return nil, fmt.Errorf("dispatch: decoding genesis record: %w", err)
		}
		records = records[1:]
	}
	if init.Version != durVersion {
		return nil, fmt.Errorf("dispatch: log version %d, this build reads %d", init.Version, durVersion)
	}

	fpOpts, err := init.Config.options()
	if err != nil {
		return nil, err
	}
	svc, err := New(init.Market, fpOpts...)
	if err != nil {
		return nil, fmt.Errorf("dispatch: rebuilding service from log: %w", err)
	}
	// Replay must be driven purely by journaled timestamps: suppress the
	// wall-clock window timer until the log is drained.
	liveBatch := svc.liveBatch
	svc.liveBatch = false

	if snap != nil {
		if err := svc.loadSnapshot(snap, init); err != nil {
			return nil, err
		}
	}
	finished := false
	for _, r := range records {
		done, rerr := svc.replayRecord(r)
		if rerr != nil {
			return nil, fmt.Errorf("dispatch: replaying record %d: %w", r.LSN, rerr)
		}
		if done {
			finished = true
			break
		}
	}
	if finished {
		// The day is settled; the log needs no reopening and accepts no
		// further records.
		return svc, nil
	}

	lg, err := wal.Open(dir, dc.walOptions())
	if err != nil {
		return nil, err
	}
	svc.mu.Lock()
	svc.cfg.durDir = dir
	svc.cfg.dur = dc
	svc.jr = &journal{
		lg:            lg,
		snapshotEvery: dc.snapshotEvery,
		sinceSnap:     int(rec.NextLSN - rec.SnapshotLSN),
	}
	svc.liveBatch = liveBatch
	svc.armBatchTimer()
	svc.mu.Unlock()
	return svc, nil
}

// loadSnapshot swaps the freshly-constructed service's stream and books
// for the snapshot's captured state.
func (svc *Service) loadSnapshot(snap *snapPayload, init initRecord) error {
	if snap.State == nil {
		return fmt.Errorf("dispatch: snapshot carries no stream state")
	}
	eng := svc.st.Engine()
	var d sim.Dispatcher
	var algo sim.BatchAlgorithm
	if init.Config.BatchWindow > 0 {
		a, err := ParseBatchAlgorithm(init.Config.BatchAlgo)
		if err != nil {
			return err
		}
		algo, err = a.sim()
		if err != nil {
			return err
		}
	} else {
		pol, err := ParsePolicy(init.Config.Policy)
		if err != nil {
			return err
		}
		d, err = pol.dispatcher()
		if err != nil {
			return err
		}
	}
	strm, err := eng.RestoreStream(snap.State, d, init.Config.BatchWindow, algo)
	if err != nil {
		return fmt.Errorf("dispatch: restoring stream state: %w", err)
	}
	if svc.batched {
		strm.SetDecisionHandler(svc.onWindowDecision)
		strm.SetBatchCloseHandler(svc.onWindowClosed)
	}
	svc.st = strm

	svc.driverIDs = append([]int(nil), snap.DriverIDs...)
	svc.drivers = make(map[int]int, len(snap.DriverIDs))
	for idx, id := range snap.DriverIDs {
		if _, dup := svc.drivers[id]; dup {
			return fmt.Errorf("dispatch: snapshot registers driver %d twice", id)
		}
		svc.drivers[id] = idx
	}
	svc.retired = make(map[int]bool, len(snap.Retired))
	for _, id := range snap.Retired {
		svc.retired[id] = true
	}
	svc.taskIDs = append([]int(nil), snap.TaskIDs...)
	svc.tasks = make(map[int]int, len(snap.TaskIDs))
	for idx, id := range snap.TaskIDs {
		if _, dup := svc.tasks[id]; dup {
			return fmt.Errorf("dispatch: snapshot registers task %d twice", id)
		}
		svc.tasks[id] = idx
	}
	svc.decided = make(map[int]Assignment, len(snap.Decided))
	for id, a := range snap.Decided {
		svc.decided[id] = a
	}
	svc.shed.Store(snap.Shed)
	return nil
}

// replayRecord re-drives one journaled mutation through the service's
// normal paths. Returns done=true on the finish record.
func (svc *Service) replayRecord(r wal.Record) (done bool, err error) {
	typ, body, err := decodeRecord(r.Data)
	if err != nil {
		return false, err
	}
	var rec walRecord
	if typ != recInit && typ != recFinish {
		if err := json.Unmarshal(body, &rec); err != nil {
			return false, fmt.Errorf("decoding body: %w", err)
		}
	}
	ctx := context.Background()
	switch typ {
	case recInit:
		// A genesis record after the start means the suffix overlaps the
		// snapshot boundary incorrectly.
		return false, fmt.Errorf("unexpected genesis record mid-log")
	case recSubmit:
		if rec.Task == nil {
			return false, fmt.Errorf("submit record carries no task")
		}
		_, err = svc.SubmitTask(ctx, *rec.Task)
	case recCancel:
		_, err = svc.CancelTask(ctx, rec.ID, rec.At)
	case recAddDriver:
		if rec.Driver == nil {
			return false, fmt.Errorf("join record carries no driver")
		}
		err = svc.AddDriver(ctx, *rec.Driver)
	case recRetire:
		err = svc.RetireDriver(ctx, rec.ID, rec.At)
	case recAdvance:
		err = svc.replayAdvance(rec.At)
	case recFinish:
		_, err = svc.Close()
		return true, err
	default:
		return false, fmt.Errorf("unknown record type %d", typ)
	}
	// Replay of an admitted mutation can only fail if the log and the
	// code disagree (version skew, corruption the checksum missed).
	// ErrOverloaded cannot happen: shed submissions were never journaled
	// and admission is deterministic.
	return false, err
}

// replayAdvance re-applies a journaled wall-clock window tick.
func (svc *Service) replayAdvance(at float64) error {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return errClosed()
	}
	if err := svc.st.AdvanceTo(at); err != nil {
		return simErr(err)
	}
	return nil
}
