package dispatch

// EventType tags one entry of the service's event feed.
type EventType string

// The feed vocabulary. Task-scoped events carry the task's ID and the
// involved driver (-1 when none); driver-scoped events carry the
// driver's ID and task -1.
const (
	// EventAssigned: a submitted task was assigned to DriverID. On a
	// batched service the event fires at the task's window close, after
	// an EventPending acknowledged the submission.
	EventAssigned EventType = "assigned"
	// EventRejected: a submitted task found no feasible driver (at
	// submission time, or at its window close on a batched service).
	EventRejected EventType = "rejected"
	// EventPending: a batched service accepted the task into the open
	// batch window; the decision follows at the window close.
	EventPending EventType = "pending"
	// EventCancelled: a rider cancellation took effect; DriverID is
	// the driver freed by a revoked assignment, -1 if none was bound.
	EventCancelled EventType = "cancelled"
	// EventDriverJoined: a driver entered (or re-entered) the market.
	EventDriverJoined EventType = "driver_joined"
	// EventDriverRetired: a driver left the market.
	EventDriverRetired EventType = "driver_retired"
	// EventBatchClosed: a batched service closed a dispatch window.
	// The entry carries no task or driver (both -1); Batch holds the
	// window's stats. It follows the window's per-task decisions.
	EventBatchClosed EventType = "batch_closed"
	// EventGap: this subscriber's buffer overflowed and Dropped events
	// were lost between the previous entry and this notice. The gap
	// entry carries no task or driver (both -1). A subscriber that sees
	// one should resynchronize via Decision / Snapshot rather than
	// assume it observed every decision. Trailing drops with no later
	// delivery to carry the notice are visible in Stats.FeedDrops.
	EventGap EventType = "gap"
)

// BatchStats summarizes one closed dispatch window of a batched
// service.
type BatchStats struct {
	// OpenedAt is the submission time of the order that opened the
	// window; ClosedAt the decision instant, OpenedAt + window.
	OpenedAt float64 `json:"opened_at"`
	ClosedAt float64 `json:"closed_at"`
	// Submitted counts the orders that joined the window; Cancelled
	// the ones withdrawn before the close; the rest were Matched or
	// Rejected at the close.
	Submitted int `json:"submitted"`
	Cancelled int `json:"cancelled"`
	Matched   int `json:"matched"`
	Rejected  int `json:"rejected"`
}

// Event is one entry of the assignment-event feed.
type Event struct {
	Type     EventType `json:"type"`
	At       float64   `json:"at"` // simulated market time
	TaskID   int       `json:"task_id"`
	DriverID int       `json:"driver_id"`
	// Batch carries the closed window's stats on EventBatchClosed
	// entries, nil otherwise.
	Batch *BatchStats `json:"batch,omitempty"`
	// Dropped carries the length of the preceding drop run on EventGap
	// entries, 0 otherwise.
	Dropped int `json:"dropped,omitempty"`
}

// subscriber is one attached feed listener. run counts the events
// dropped since the listener last received one; the next successful
// delivery is preceded by an EventGap notice carrying that count.
type subscriber struct {
	ch  chan Event
	run int
}

// Subscribe attaches a listener to the service's event feed and returns
// the channel plus a cancel function releasing it. Every market
// decision made after the subscription is delivered in order; a
// subscriber that falls more than buffer events behind has the excess
// dropped rather than stalling the market (buffer ≤ 0 selects 256).
// Drops are not silent: each is counted in Stats.FeedDrops, and the
// subscriber's next delivery is preceded by an EventGap entry whose
// Dropped field says how many events it missed. The channel is closed
// by cancel and by Service.Close.
func (s *Service) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan Event, buffer)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = &subscriber{ch: ch}
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if sub, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub.ch)
		}
	}
}

// publish fans an event out to every subscriber, dropping it for any
// subscriber whose buffer is full. A drop starts (or extends) the
// subscriber's gap run; the run is flushed as an EventGap notice ahead
// of the next event that fits, so a lagging listener always learns how
// much it missed. Must be called with the mutex held.
func (s *Service) publish(ev Event) {
	for _, sub := range s.subs {
		if sub.run > 0 {
			// A gap notice must precede ev to keep the feed ordered; if
			// the buffer still has no room, ev joins the run instead.
			select {
			case sub.ch <- Event{Type: EventGap, At: ev.At, TaskID: -1, DriverID: -1, Dropped: sub.run}:
				sub.run = 0
			default:
				sub.run++
				s.feedDrops++
				continue
			}
		}
		select {
		case sub.ch <- ev:
		default:
			sub.run++
			s.feedDrops++
		}
	}
}
