package dispatch

import "errors"

// The service's typed error vocabulary. Every Service method returns
// one of these sentinels (possibly wrapped with detail) for conditions
// a caller can act on; match with errors.Is.
var (
	// ErrClosed: the service has been Closed; no further submissions
	// are accepted.
	ErrClosed = errors.New("dispatch: service closed")

	// ErrDuplicateTask: a task with this ID was already submitted.
	ErrDuplicateTask = errors.New("dispatch: duplicate task id")

	// ErrDuplicateDriver: a driver with this ID is already registered
	// and present.
	ErrDuplicateDriver = errors.New("dispatch: duplicate driver id")

	// ErrUnknownTask: no task with this ID was ever submitted.
	ErrUnknownTask = errors.New("dispatch: unknown task id")

	// ErrUnknownDriver: no driver with this ID is registered.
	ErrUnknownDriver = errors.New("dispatch: unknown driver id")

	// ErrInvalidTask: the task fails model validation (deadline
	// ordering, price vs willingness-to-pay, coordinates).
	ErrInvalidTask = errors.New("dispatch: invalid task")

	// ErrInvalidDriver: the driver fails model validation (working
	// window, coordinates, speed).
	ErrInvalidDriver = errors.New("dispatch: invalid driver")

	// ErrInvalidCancel: the cancellation is not after the task's
	// publish time.
	ErrInvalidCancel = errors.New("dispatch: cancellation not after task publish")

	// ErrOutOfOrder: the event's timestamp precedes the service's
	// current time and the service was built WithStrictTimes. Without
	// strict times, late events are clamped to the current time
	// instead.
	ErrOutOfOrder = errors.New("dispatch: event timestamp before current time")

	// ErrInvalidOption: a functional option was given an unusable
	// value (e.g. WithShards(0)).
	ErrInvalidOption = errors.New("dispatch: invalid option")

	// ErrOverloaded: the service is at its WithMaxPending admission
	// bound — the open batch window already holds the maximum number of
	// undecided orders (batched mode), or the maximum number of
	// submissions are in flight (instant mode). The submission was shed
	// without registering the task; the rider may retry. Front ends map
	// this to HTTP 429.
	ErrOverloaded = errors.New("dispatch: overloaded, submission shed")

	// ErrFinished: the market day was finished — the underlying run's
	// accounts were settled by Close (or the durable log being restored
	// recorded a finish) — so mutation and mid-run snapshots are over.
	// Errors returned by mutators on a closed service match both
	// ErrClosed and ErrFinished; the sentinel exists so callers can
	// distinguish "this market's day is settled" from transient
	// conditions without relying on internal state flags.
	ErrFinished = errors.New("dispatch: market finished")
)
