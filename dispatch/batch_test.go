package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestBatchedServiceReplayBitIdenticalToEngine is the batched half of
// the package's differential contract: submitting a generated day —
// churn and cancellations included — event by event through a Service
// built WithBatching produces a final result bit-identical to
// Engine.RunBatchedScenario replaying the same trace in one call, for
// both solvers, every shard count and every matcher worker count (the
// engine baseline runs serially, so the sweep also proves the worker
// pool invisible end to end).
func TestBatchedServiceReplayBitIdenticalToEngine(t *testing.T) {
	const seed = 17
	scenarios := []struct {
		drivers, tasks int
		churn, cancel  float64
		window         float64
	}{
		{30, 150, 0, 0, 45},
		{30, 150, 0.5, 0.4, 90},
	}
	algos := []struct {
		pub BatchAlgorithm
		sim sim.BatchAlgorithm
	}{
		{Hungarian, sim.BatchHungarian},
		{Auction, sim.BatchAuction},
	}
	for si, sc := range scenarios {
		cfg := trace.NewConfig(int64(70+si), sc.tasks, sc.drivers, trace.Hitchhiking)
		cfg.PickupWindowMin = 8 * 60 // give windows room to form
		cfg.PickupWindowMax = 16 * 60
		tr := trace.NewGenerator(cfg).Generate(nil)
		if sc.churn > 0 || sc.cancel > 0 {
			tr.Events = trace.WithChurn(tr, trace.DefaultChurn(int64(si), sc.churn, sc.cancel))
		}
		for _, algo := range algos {
			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 2, 4} {
					name := fmt.Sprintf("s%d/%v/shards=%d/workers=%d", si, algo.pub, shards, workers)
					t.Run(name, func(t *testing.T) {
						eng, err := sim.New(cfg.Market, tr.Drivers, seed)
						if err != nil {
							t.Fatal(err)
						}
						if shards > 1 {
							eng.SetCandidateSource(sim.NewShardedSource(shards))
						}
						batch := eng.RunBatchedScenario(tr.Tasks, tr.Events, sc.window, algo.sim)

						svc := replayTrace(t, tr, WithBatching(sc.window, algo.pub),
							WithShards(shards), WithMatchWorkers(workers), WithSeed(seed), WithStrictTimes())
						stats, err := svc.Close()
						if err != nil {
							t.Fatal(err)
						}
						if svc.final == nil {
							t.Fatal("service kept no final result")
						}
						if !reflect.DeepEqual(batch, *svc.final) {
							t.Fatalf("batched service replay diverged from engine:\nengine:  served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f\nservice: served=%d rejected=%d cancelled=%d revenue=%.9f profit=%.9f",
								batch.Served, batch.Rejected, batch.Cancelled, batch.Revenue, batch.TotalProfit,
								stats.Served, stats.Rejected, stats.Cancelled, stats.Revenue, stats.Profit)
						}
						if stats.Pending != 0 {
							t.Fatalf("pending after Close: %d", stats.Pending)
						}
						if stats.Served+stats.Rejected+stats.Cancelled != stats.Tasks {
							t.Fatalf("final books do not balance: %+v", stats)
						}
					})
				}
			}
		}
	}
}

// TestWithBatchingValidation pins the typed-error boundary the sim
// layer's internal panic moved behind: bad windows and unknown solvers
// never reach the engine.
func TestWithBatchingValidation(t *testing.T) {
	m := Market{Drivers: []Driver{{
		ID: 0, Source: Point{Lat: 41.15, Lon: -8.61}, Dest: Point{Lat: 41.16, Lon: -8.60},
		Start: 0, End: 7200,
	}}}
	for _, w := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := New(m, WithBatching(w, Hungarian)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithBatching(%g): %v, want ErrInvalidOption", w, err)
		}
	}
	if _, err := New(m, WithBatching(30, BatchAlgorithm(9))); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("unknown algorithm: %v, want ErrInvalidOption", err)
	}
	if _, err := New(m, WithBatching(30, Auction)); err != nil {
		t.Errorf("valid batching rejected: %v", err)
	}

	for _, n := range []int{0, -3} {
		if _, err := New(m, WithBatching(30, Hungarian), WithMatchWorkers(n)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithMatchWorkers(%d): %v, want ErrInvalidOption", n, err)
		}
	}
	if _, err := New(m, WithBatching(30, Hungarian), WithMatchWorkers(4)); err != nil {
		t.Errorf("valid match workers rejected: %v", err)
	}

	if _, err := ParseBatchAlgorithm("simplex"); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("ParseBatchAlgorithm(simplex): %v", err)
	}
	for _, a := range []BatchAlgorithm{Hungarian, Auction} {
		got, err := ParseBatchAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseBatchAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
}

// TestBatchedServicePendingContract drives one scripted window through
// the public API and pins the pending-decision contract: the pending
// handle, the feed order (pending → per-task decisions → batch_closed),
// Decision before and after the close, and mid-window Stats.
func TestBatchedServicePendingContract(t *testing.T) {
	ctx := context.Background()
	base := Point{Lat: 41.15, Lon: -8.61}
	near := func(dlat, dlon float64) Point { return Point{Lat: base.Lat + dlat, Lon: base.Lon + dlon} }
	svc, err := New(Market{Drivers: []Driver{
		{ID: 100, Source: base, Dest: near(0.02, 0.02), Start: 0, End: 7200},
		{ID: 101, Source: near(0.003, 0.003), Dest: near(0.02, 0.02), Start: 0, End: 7200},
	}}, WithBatching(30, Hungarian))
	if err != nil {
		t.Fatal(err)
	}
	feed, cancel := svc.Subscribe(64)
	defer cancel()

	mkTask := func(id int, publish float64) Task {
		return Task{ID: id, Publish: publish, Source: near(0.001, 0), Dest: near(0.01, 0.01),
			StartBy: publish + 900, EndBy: publish + 3600, Price: 10}
	}
	a1, err := svc.SubmitTask(ctx, mkTask(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Pending || a1.Assigned || a1.DecideBy != 130 || a1.DecidedAt != 100 {
		t.Fatalf("pending handle %+v", a1)
	}
	a2, err := svc.SubmitTask(ctx, mkTask(2, 110))
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Pending || a2.DecideBy != 130 {
		t.Fatalf("second pending handle %+v (window must stay anchored at its opener)", a2)
	}

	// Mid-window: both orders pending, the books balance through the
	// Pending column, and Decision answers with the handle.
	snap, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pending != 2 || snap.Served != 0 || snap.Rejected != 0 {
		t.Fatalf("mid-window stats %+v", snap)
	}
	if snap.Served+snap.Rejected+snap.Cancelled+snap.Pending != snap.Tasks {
		t.Fatalf("mid-window books do not balance: %+v", snap)
	}
	d1, err := svc.Decision(ctx, 1)
	if err != nil || !d1.Pending || d1.DecideBy != 130 {
		t.Fatalf("Decision mid-window: %+v, %v", d1, err)
	}
	if _, err := svc.Decision(ctx, 999); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Decision(999): %v", err)
	}

	// A third order published past the close drains the window first:
	// its own window opens at 200.
	a3, err := svc.SubmitTask(ctx, mkTask(3, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !a3.Pending || a3.DecideBy != 230 {
		t.Fatalf("third pending handle %+v", a3)
	}
	d1, err = svc.Decision(ctx, 1)
	if err != nil || d1.Pending || !d1.Assigned || d1.DecidedAt != 130 {
		t.Fatalf("Decision after close: %+v, %v", d1, err)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Both drivers are deadline-locked by window 1's trips, so window
	// 2's order finds no feasible driver: the batched market's
	// response-time trade-off, visible end to end.
	if stats.Pending != 0 || stats.Served != 2 || stats.Rejected != 1 || stats.Tasks != 3 {
		t.Fatalf("final stats %+v", stats)
	}
	// Decision still answers after Close.
	d3, err := svc.Decision(ctx, 3)
	if err != nil || d3.Pending || d3.Assigned || d3.DecidedAt != 230 {
		t.Fatalf("Decision after Close: %+v, %v", d3, err)
	}

	var types []EventType
	var closes []*BatchStats
	for ev := range feed {
		types = append(types, ev.Type)
		if ev.Type == EventBatchClosed {
			closes = append(closes, ev.Batch)
		}
	}
	want := []EventType{
		EventPending, EventPending, // window 1 fills
		EventAssigned, EventAssigned, EventBatchClosed, // window 1 decided
		EventPending,                    // window 2 fills
		EventRejected, EventBatchClosed, // window 2 decided by Close
	}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("feed %v, want %v", types, want)
	}
	if len(closes) != 2 || closes[0] == nil || closes[1] == nil {
		t.Fatalf("batch_closed payloads %v", closes)
	}
	if closes[0].Submitted != 2 || closes[0].Matched != 2 || closes[0].OpenedAt != 100 || closes[0].ClosedAt != 130 {
		t.Fatalf("window 1 stats %+v", *closes[0])
	}
	if closes[1].Submitted != 1 || closes[1].Matched != 0 || closes[1].Rejected != 1 || closes[1].ClosedAt != 230 {
		t.Fatalf("window 2 stats %+v", *closes[1])
	}
}

// TestBatchedServiceCancelInWindow: a rider withdrawing an order before
// its window closes is never assigned, and the window stats record the
// cancellation.
func TestBatchedServiceCancelInWindow(t *testing.T) {
	ctx := context.Background()
	base := Point{Lat: 41.15, Lon: -8.61}
	near := func(dlat, dlon float64) Point { return Point{Lat: base.Lat + dlat, Lon: base.Lon + dlon} }
	svc, err := New(Market{Drivers: []Driver{
		{ID: 1, Source: base, Dest: near(0.02, 0.02), Start: 0, End: 7200},
	}}, WithBatching(30, Hungarian))
	if err != nil {
		t.Fatal(err)
	}
	feed, cancel := svc.Subscribe(16)
	defer cancel()
	if _, err := svc.SubmitTask(ctx, Task{ID: 7, Publish: 100, Source: near(0.001, 0),
		Dest: near(0.01, 0.01), StartBy: 900, EndBy: 3600, Price: 10}); err != nil {
		t.Fatal(err)
	}
	out, err := svc.CancelTask(ctx, 7, 110)
	if err != nil || !out.Cancelled || out.FreedDriverID != -1 {
		t.Fatalf("in-window cancel %+v, %v", out, err)
	}
	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cancelled != 1 || stats.Served != 0 || stats.Rejected != 0 || stats.Pending != 0 {
		t.Fatalf("final stats %+v", stats)
	}
	d, err := svc.Decision(ctx, 7)
	if err != nil || d.Assigned {
		t.Fatalf("cancelled task decided: %+v, %v", d, err)
	}
	var sawClose bool
	for ev := range feed {
		switch ev.Type {
		case EventAssigned:
			t.Fatalf("cancelled task assigned: %+v", ev)
		case EventBatchClosed:
			sawClose = true
			if ev.Batch.Cancelled != 1 || ev.Batch.Submitted != 1 || ev.Batch.Matched != 0 {
				t.Fatalf("window stats %+v", *ev.Batch)
			}
		}
	}
	if !sawClose {
		t.Fatal("no batch_closed event (empty windows still close)")
	}
}

// TestBatchedServiceRealTimeSoak races concurrent submitters and
// cancellers against the wall-clock batch-close timer of a live batched
// service (WithBatching + WithRealTime) and checks feed and Snapshot
// consistency throughout. Run under -race this is the batched service's
// concurrency guarantee; it is skipped in short mode.
func TestBatchedServiceRealTimeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		submitters = 6
		perWorker  = 100
		window     = 0.05 // simulated seconds == wall seconds under the live timer
	)
	cfg := trace.NewConfig(23, submitters*perWorker, 100, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	m := Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, pubDriver(i, d, 0))
	}
	svc, err := New(m, WithBatching(window, Hungarian), WithRealTime(), WithShards(2), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	feed, cancelSub := svc.Subscribe(8192)
	defer cancelSub()
	var consumed sync.WaitGroup
	consumed.Add(1)
	var pendingEvs, decidedEvs, closeEvs int
	go func() {
		defer consumed.Done()
		for ev := range feed {
			switch ev.Type {
			case EventPending:
				pendingEvs++
			case EventAssigned, EventRejected:
				decidedEvs++
			case EventBatchClosed:
				closeEvs++
				if ev.Batch == nil || ev.Batch.Submitted != ev.Batch.Matched+ev.Batch.Rejected+ev.Batch.Cancelled {
					panic(fmt.Sprintf("inconsistent window stats %+v", ev.Batch))
				}
			}
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, submitters+1)
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; k < perWorker; k++ {
				ti := w*perWorker + k
				a, err := svc.SubmitTask(ctx, pubTask(ti, tr.Tasks[ti]))
				if err != nil {
					errs <- fmt.Errorf("submit %d: %w", ti, err)
					return
				}
				if !a.Pending {
					errs <- fmt.Errorf("submit %d answered instantly on a batched service", ti)
					return
				}
				// Some riders think better of it while still in the window.
				if rng.Float64() < 0.15 {
					if _, err := svc.CancelTask(ctx, ti, a.DecidedAt+window/4); err != nil {
						errs <- fmt.Errorf("cancel %d: %w", ti, err)
						return
					}
				}
			}
		}()
	}
	// Snapshot reader: the books must balance at every instant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			snap, err := svc.Snapshot(ctx)
			if err != nil {
				errs <- fmt.Errorf("snapshot: %w", err)
				return
			}
			if snap.Served+snap.Rejected+snap.Cancelled+snap.Pending != snap.Tasks {
				errs <- fmt.Errorf("books do not balance mid-run: %+v", snap)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The last window has no follow-up traffic: only the wall-clock
	// timer can close it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := svc.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wall-clock timer never closed the final window: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	stats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	consumed.Wait()
	total := submitters * perWorker
	if stats.Tasks != total {
		t.Fatalf("submitted %d of %d", stats.Tasks, total)
	}
	if stats.Served+stats.Rejected+stats.Cancelled != total || stats.Pending != 0 {
		t.Fatalf("final books do not balance: %+v", stats)
	}
	if pendingEvs == 0 || decidedEvs == 0 || closeEvs == 0 {
		t.Fatalf("feed starved: pending=%d decided=%d closes=%d", pendingEvs, decidedEvs, closeEvs)
	}
}
