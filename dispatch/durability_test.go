package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
)

// durItem is one externally-injected operation of a replayed day.
type durItem struct {
	at     float64
	rank   int
	isTask bool
	idx    int
	kind   model.EventKind
}

// durFeed splits a trace into the market (with join times) and the
// ordered live operations, mirroring replayTrace's canonical order.
func durFeed(tr model.Trace) (Market, []durItem) {
	joinAt := make(map[int]float64)
	var feed []durItem
	for _, ev := range tr.Events {
		switch ev.Kind {
		case model.EventJoin:
			joinAt[ev.Driver] = ev.At
		case model.EventRetire:
			feed = append(feed, durItem{at: ev.At, rank: 1, idx: ev.Driver, kind: ev.Kind})
		case model.EventCancel:
			feed = append(feed, durItem{at: ev.At, rank: 2, idx: ev.Task, kind: ev.Kind})
		}
	}
	for i := range tr.Tasks {
		feed = append(feed, durItem{at: tr.Tasks[i].Publish, rank: 5, isTask: true, idx: i})
	}
	sort.SliceStable(feed, func(a, b int) bool {
		if feed[a].at != feed[b].at {
			return feed[a].at < feed[b].at
		}
		return feed[a].rank < feed[b].rank
	})
	m := Market{}
	for i, d := range tr.Drivers {
		m.Drivers = append(m.Drivers, pubDriver(i, d, joinAt[i]))
	}
	return m, feed
}

func applyFeed(t *testing.T, svc *Service, tr model.Trace, items []durItem) {
	t.Helper()
	ctx := context.Background()
	for _, it := range items {
		switch {
		case it.isTask:
			if _, err := svc.SubmitTask(ctx, pubTask(it.idx, tr.Tasks[it.idx])); err != nil {
				t.Fatalf("SubmitTask(%d): %v", it.idx, err)
			}
		case it.kind == model.EventRetire:
			if err := svc.RetireDriver(ctx, it.idx, it.at); err != nil {
				t.Fatalf("RetireDriver(%d): %v", it.idx, err)
			}
		default:
			if _, err := svc.CancelTask(ctx, it.idx, it.at); err != nil {
				t.Fatalf("CancelTask(%d): %v", it.idx, err)
			}
		}
	}
}

// TestDurableRestoreDifferential is the tentpole's crash contract: a
// durable service killed at randomized mid-day points (the log simply
// abandoned, never flushed gracefully) and rebuilt with Restore, then
// driven through the remainder of the day, settles books BIT-IDENTICAL
// to an uninterrupted in-memory run — across churn/cancel traces,
// instant and batched dispatch, shard counts 1, 2 and 4, with and
// without snapshots bounding the replay.
func TestDurableRestoreDifferential(t *testing.T) {
	cfg := trace.NewConfig(61, 110, 22, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(9, 0.4, 0.3))
	market, feed := durFeed(tr)

	rng := rand.New(rand.NewSource(17))
	for _, batched := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			for _, snapEvery := range []int{7, 100000} {
				mode := "instant"
				if batched {
					mode = "batched"
				}
				snapName := "snapshots"
				if snapEvery > len(feed) {
					snapName = "log-only"
				}
				t.Run(fmt.Sprintf("%s/shards-%d/%s", mode, shards, snapName), func(t *testing.T) {
					base := []Option{WithSeed(7)}
					if shards > 1 {
						base = append(base, WithShards(shards))
					}
					if batched {
						base = append(base, WithBatching(45, Hungarian))
					}

					// The uninterrupted reference.
					ref, err := New(market, base...)
					if err != nil {
						t.Fatal(err)
					}
					applyFeed(t, ref, tr, feed)
					wantStats, err := ref.Close()
					if err != nil {
						t.Fatal(err)
					}

					cuts := []int{0, 1, len(feed) - 1}
					for i := 0; i < 3; i++ {
						cuts = append(cuts, 1+rng.Intn(len(feed)-1))
					}
					for _, cut := range cuts {
						dir := t.TempDir()
						opts := append(append([]Option(nil), base...),
							WithDurability(dir, DurSnapshotEvery(snapEvery), DurFsync("interval")))
						svc, err := New(market, opts...)
						if err != nil {
							t.Fatal(err)
						}
						applyFeed(t, svc, tr, feed[:cut])
						// Crash: the process dies here. Nothing is flushed or
						// closed; the journal is simply abandoned.
						svc = nil

						restored, err := Restore(dir)
						if err != nil {
							t.Fatalf("cut %d: Restore: %v", cut, err)
						}
						applyFeed(t, restored, tr, feed[cut:])
						gotStats, err := restored.Close()
						if err != nil {
							t.Fatalf("cut %d: Close: %v", cut, err)
						}
						// Shed/MaxPending/FeedDrops are process-local
						// operational counters; everything else — books,
						// revenue, times — must agree exactly.
						gotStats.FeedDrops, wantStats.FeedDrops = 0, 0
						if !reflect.DeepEqual(wantStats, gotStats) {
							t.Fatalf("cut %d: stats diverged\nwant %+v\ngot  %+v", cut, wantStats, gotStats)
						}
						if !reflect.DeepEqual(ref.final, restored.final) {
							t.Fatalf("cut %d: settled result diverged (served %d vs %d, revenue %.9f vs %.9f)",
								cut, ref.final.Served, restored.final.Served, ref.final.Revenue, restored.final.Revenue)
						}
					}
				})
			}
		}
	}
}

// TestDurableRestartChain: several crash-restore cycles in one day —
// each restart continuing the SAME log — still settle identically, and
// the later restarts replay from snapshots cut by earlier incarnations.
func TestDurableRestartChain(t *testing.T) {
	cfg := trace.NewConfig(62, 90, 18, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(4, 0.3, 0.25))
	market, feed := durFeed(tr)

	ref, err := New(market, WithSeed(3), WithBatching(60, Auction))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, ref, tr, feed)
	wantStats, err := ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Small segments and a deep snapshot retention so the rotation
	// artifacts survive pruning for the assertions below; each Restore
	// reopens with the same knobs (the log does not remember them).
	knobs := []DurOption{DurSnapshotEvery(11), DurSegmentBytes(4096), DurKeepSnapshots(16)}
	svc, err := New(market, WithSeed(3), WithBatching(60, Auction), WithDurability(dir, knobs...))
	if err != nil {
		t.Fatal(err)
	}
	thirds := []int{len(feed) / 3, 2 * len(feed) / 3, len(feed)}
	prev := 0
	for leg, until := range thirds {
		applyFeed(t, svc, tr, feed[prev:until])
		prev = until
		if leg < len(thirds)-1 {
			// Crash and restore; the next leg continues on the survivor.
			svc = nil
			svc, err = Restore(dir, knobs...)
			if err != nil {
				t.Fatalf("leg %d: Restore: %v", leg, err)
			}
		}
	}
	gotStats, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}
	gotStats.FeedDrops, wantStats.FeedDrops = 0, 0
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("restart chain diverged\nwant %+v\ngot  %+v", wantStats, gotStats)
	}
	if !reflect.DeepEqual(ref.final, svc.final) {
		t.Fatal("restart chain settled a different result")
	}
	// The cadence actually cut snapshots (and rotation actually rotated).
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot file was ever cut")
	}
	if len(segs) < 2 {
		t.Fatalf("segment rotation never fired (%d segments)", len(segs))
	}
}

// TestDurableTornTailRecovery injects the crash INSIDE a record append:
// the last journal record is truncated at randomized byte offsets. A
// torn record was never acknowledged, so Restore must succeed silently
// and the restored market must equal an in-memory run of every
// operation but the torn one.
func TestDurableTornTailRecovery(t *testing.T) {
	cfg := trace.NewConfig(63, 40, 10, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)
	// Submissions only, so op k maps to journal record k+1 (after the
	// genesis record) and "drop the last op" is well defined.
	var subs []durItem
	for _, it := range feed {
		if it.isTask {
			subs = append(subs, it)
		}
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		cut := 2 + rng.Intn(len(subs)-2)
		dir := t.TempDir()
		svc, err := New(market, WithSeed(5), WithDurability(dir, DurSnapshotEvery(100000)))
		if err != nil {
			t.Fatal(err)
		}
		applyFeed(t, svc, tr, subs[:cut])
		svc = nil

		// Tear the final record: truncate the single segment at a random
		// offset strictly inside the last frame.
		seg := segFileOf(t, dir)
		buf, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := wal.Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		lastLen := 8 + len(rec.Records[len(rec.Records)-1].Data)
		tearAt := len(buf) - 1 - rng.Intn(lastLen-1)
		if err := os.Truncate(seg, int64(tearAt)); err != nil {
			t.Fatal(err)
		}

		restored, err := Restore(dir)
		if err != nil {
			t.Fatalf("trial %d: Restore after torn tail: %v", trial, err)
		}
		gotStats, err := restored.Close()
		if err != nil {
			t.Fatal(err)
		}

		ref, err := New(market, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		applyFeed(t, ref, tr, subs[:cut-1])
		wantStats, err := ref.Close()
		if err != nil {
			t.Fatal(err)
		}
		gotStats.FeedDrops, wantStats.FeedDrops = 0, 0
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("trial %d (tear %d/%d): torn-tail restore diverged\nwant %+v\ngot  %+v",
				trial, tearAt, len(buf), wantStats, gotStats)
		}
	}
}

// TestDurableCorruptTailTyped: flipped bits in the final record surface
// as wal.ErrCorruptTail from Restore — never a panic, never silent —
// and an explicit wal.Repair unblocks recovery minus that record.
func TestDurableCorruptTailTyped(t *testing.T) {
	cfg := trace.NewConfig(64, 30, 8, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)
	var subs []durItem
	for _, it := range feed {
		if it.isTask {
			subs = append(subs, it)
		}
	}
	dir := t.TempDir()
	svc, err := New(market, WithSeed(5), WithDurability(dir, DurSnapshotEvery(100000)))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, svc, tr, subs)
	svc = nil

	seg := segFileOf(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0x20
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(dir); !errors.Is(err, wal.ErrCorruptTail) {
		t.Fatalf("Restore over corrupt tail = %v, want wal.ErrCorruptTail", err)
	}
	if _, err := wal.Repair(dir); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	restored, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore after Repair: %v", err)
	}
	stats, err := restored.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != len(subs)-1 {
		t.Fatalf("repaired restore holds %d tasks, want %d", stats.Tasks, len(subs)-1)
	}
}

// segFileOf returns the single segment file of a one-segment log.
func segFileOf(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, %v", segs, err)
	}
	return segs[0]
}

// TestRestoreAfterClose: a gracefully closed day restores as a settled,
// read-only service with the same final stats.
func TestRestoreAfterClose(t *testing.T) {
	cfg := trace.NewConfig(65, 40, 10, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)
	dir := t.TempDir()
	svc, err := New(market, WithSeed(2), WithBatching(30, Hungarian), WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, svc, tr, feed)
	want, err := svc.Close()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore of settled day: %v", err)
	}
	got, err := restored.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got.FeedDrops, want.FeedDrops = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("settled restore stats diverged\nwant %+v\ngot  %+v", want, got)
	}
	// Mutations are over, typed both ways.
	_, err = restored.SubmitTask(context.Background(), pubTask(0, tr.Tasks[0]))
	if !errors.Is(err, ErrClosed) || !errors.Is(err, ErrFinished) {
		t.Fatalf("mutation on settled restore = %v, want ErrClosed and ErrFinished", err)
	}
}

// TestServiceErrFinishedTyped is the satellite contract: every mutator
// on a closed service returns an error matching BOTH ErrClosed and
// ErrFinished, so callers can ask "is this market's day settled?"
// without touching internal state.
func TestServiceErrFinishedTyped(t *testing.T) {
	cfg := trace.NewConfig(66, 10, 4, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, _ := durFeed(tr)
	svc, err := New(market, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	check := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrFinished) {
			t.Fatalf("%s: %v does not match ErrFinished", op, err)
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("%s: %v does not match ErrClosed", op, err)
		}
	}
	_, err = svc.SubmitTask(ctx, pubTask(0, tr.Tasks[0]))
	check("SubmitTask", err)
	_, err = svc.CancelTask(ctx, 0, 10)
	check("CancelTask", err)
	check("AddDriver", svc.AddDriver(ctx, Driver{ID: 99, End: 100}))
	check("RetireDriver", svc.RetireDriver(ctx, 0, 10))
	// Snapshot on a settled service answers with the final stats rather
	// than an error — the day's books remain queryable.
	if _, err := svc.Snapshot(ctx); err != nil {
		t.Fatalf("Snapshot after Close: %v", err)
	}
}

// TestWithDurabilityValidation: the option and its knobs reject
// unusable values, and New refuses a directory already holding a log.
func TestWithDurabilityValidation(t *testing.T) {
	if _, err := New(Market{}, WithDurability("")); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("empty dir = %v", err)
	}
	for _, opt := range []DurOption{
		DurFsync("sometimes"), DurSyncInterval(0), DurSegmentBytes(0),
		DurSnapshotEvery(0), DurKeepSnapshots(0),
	} {
		if _, err := New(Market{}, WithDurability(t.TempDir(), opt)); err == nil {
			t.Fatal("bad durability knob accepted")
		}
	}
	dir := t.TempDir()
	svc, err := New(Market{}, WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Market{}, WithDurability(dir)); !errors.Is(err, wal.ErrExists) {
		t.Fatalf("New over existing log = %v, want wal.ErrExists", err)
	}
	// But Restore over it works.
	restored, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := restored.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreEmptyDirTyped: restoring from nothing is typed, not a
// panic or a zero service.
func TestRestoreEmptyDirTyped(t *testing.T) {
	if _, err := Restore(t.TempDir()); !errors.Is(err, wal.ErrNotFound) {
		t.Fatalf("Restore(empty) = %v, want wal.ErrNotFound", err)
	}
}

// TestHaltResumesDay is the rolling-restart contract: Halt stops a
// durable market crash-consistently — no finish record, books NOT
// settled — so Restore resumes the day mid-flight and the completed run
// settles bit-identical to an uninterrupted one. Contrast with Close,
// whose finish record settles the day for good.
func TestHaltResumesDay(t *testing.T) {
	cfg := trace.NewConfig(66, 60, 14, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)

	ref, err := New(market, WithSeed(5), WithBatching(40, Hungarian))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, ref, tr, feed)
	want, err := ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	knobs := []DurOption{DurSnapshotEvery(13), DurFsync("interval")}
	svc, err := New(market, WithSeed(5), WithBatching(40, Hungarian), WithDurability(dir, knobs...))
	if err != nil {
		t.Fatal(err)
	}
	half := len(feed) / 2
	applyFeed(t, svc, tr, feed[:half])

	haltStats, err := svc.Halt()
	if err != nil {
		t.Fatal(err)
	}
	if haltStats.Tasks == 0 {
		t.Fatal("halt stats empty despite half a day of orders")
	}
	// Halt is idempotent and freezes the stats it reported.
	again, err := svc.Halt()
	if err != nil || !reflect.DeepEqual(haltStats, again) {
		t.Fatalf("second Halt = (%+v, %v), want the frozen stats", again, err)
	}
	// A halted service is closed to mutations, typed both ways.
	if _, err := svc.SubmitTask(context.Background(), pubTask(0, tr.Tasks[0])); !errors.Is(err, ErrClosed) || !errors.Is(err, ErrFinished) {
		t.Fatalf("mutation after Halt = %v, want ErrClosed and ErrFinished", err)
	}
	// Close after Halt is a no-op returning the same frozen stats: the
	// log is already closed and must NOT gain a finish record.
	cstats, err := svc.Close()
	if err != nil || !reflect.DeepEqual(haltStats, cstats) {
		t.Fatalf("Close after Halt = (%+v, %v), want the frozen stats", cstats, err)
	}

	// The day resumes where it stopped — NOT settled.
	restored, err := Restore(dir, knobs...)
	if err != nil {
		t.Fatalf("Restore after Halt: %v", err)
	}
	applyFeed(t, restored, tr, feed[half:])
	got, err := restored.Close()
	if err != nil {
		t.Fatal(err)
	}
	got.FeedDrops, want.FeedDrops = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("halt/restore day diverged\nwant %+v\ngot  %+v", want, got)
	}
	if !reflect.DeepEqual(ref.final, restored.final) {
		t.Fatal("halt/restore settled a different result")
	}
}

// TestHaltWithoutJournal: Halt on a purely in-memory service is just a
// non-settling stop — no log to sync, mutations refused afterwards.
func TestHaltWithoutJournal(t *testing.T) {
	cfg := trace.NewConfig(67, 10, 6, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)
	svc, err := New(market, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, svc, tr, feed[:len(feed)/2])
	stats, err := svc.Halt()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitTask(context.Background(), pubTask(0, tr.Tasks[0])); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Halt = %v, want ErrClosed", err)
	}
	if snap, err := svc.Snapshot(context.Background()); err != nil || !reflect.DeepEqual(stats, snap) {
		t.Fatalf("Snapshot after Halt = (%+v, %v), want the frozen stats", snap, err)
	}
}
