package dispatch

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/online"
	"repro/internal/sim"
)

// Policy selects the dispatch heuristic answering each task.
type Policy int

// The built-in dispatch policies.
const (
	// MaxMargin assigns each task to the feasible driver with the
	// largest marginal profit δ (the paper's Algorithm 4), rejecting
	// tasks whose best margin is non-positive.
	MaxMargin Policy = iota
	// Nearest assigns each task to the feasible driver who can reach
	// the pickup earliest (Algorithm 3), breaking ties randomly.
	Nearest
	// Random assigns each task to a uniformly random feasible driver —
	// the naive control baseline.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case MaxMargin:
		return "maxmargin"
	case Nearest:
		return "nearest"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (as printed by String) back into a
// Policy; serve front ends use it to parse configuration.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "maxmargin", "maxMargin":
		return MaxMargin, nil
	case "nearest":
		return Nearest, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("%w: unknown policy %q (want maxmargin, nearest or random)", ErrInvalidOption, s)
	}
}

func (p Policy) dispatcher() (sim.Dispatcher, error) {
	switch p {
	case MaxMargin:
		return online.MaxMargin{}, nil
	case Nearest:
		return online.Nearest{}, nil
	case Random:
		return online.Random{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %d", ErrInvalidOption, int(p))
	}
}

// BatchAlgorithm selects the per-window assignment solver of a batched
// service (see WithBatching).
type BatchAlgorithm int

// The built-in batch solvers.
const (
	// Hungarian solves each window's maximum-weight task–driver
	// assignment exactly, in O(n³).
	Hungarian BatchAlgorithm = iota
	// Auction uses Bertsekas' auction algorithm — exact up to its tiny
	// bid increment, typically faster on sparse windows.
	Auction
)

// String implements fmt.Stringer.
func (a BatchAlgorithm) String() string {
	switch a {
	case Hungarian:
		return "hungarian"
	case Auction:
		return "auction"
	default:
		return fmt.Sprintf("BatchAlgorithm(%d)", int(a))
	}
}

// ParseBatchAlgorithm converts a solver name (as printed by String)
// back into a BatchAlgorithm; serve front ends use it to parse
// configuration.
func ParseBatchAlgorithm(s string) (BatchAlgorithm, error) {
	switch s {
	case "hungarian":
		return Hungarian, nil
	case "auction":
		return Auction, nil
	default:
		return 0, fmt.Errorf("%w: unknown batch algorithm %q (want hungarian or auction)", ErrInvalidOption, s)
	}
}

func (a BatchAlgorithm) sim() (sim.BatchAlgorithm, error) {
	switch a {
	case Hungarian:
		return sim.BatchHungarian, nil
	case Auction:
		return sim.BatchAuction, nil
	default:
		return 0, fmt.Errorf("%w: unknown batch algorithm %d", ErrInvalidOption, int(a))
	}
}

// Clock paces the service's simulated time. Advance is called as the
// market moves from one event time to the next; a zero-delay clock (the
// default) processes events as fast as the hardware allows, a scaled
// clock replays a day in wall-clock minutes. Any implementation of the
// internal simulator's clock contract satisfies this interface.
type Clock interface {
	Advance(from, to float64)
}

// ScaledClock returns a Clock that sleeps (to−from)/factor wall seconds
// per advance: factor 60 replays a simulated hour per wall minute.
// Factor ≤ 0 is treated as 1 (real time).
func ScaledClock(factor float64) Clock { return scaledClock{factor} }

type scaledClock struct{ factor float64 }

func (c scaledClock) Advance(from, to float64) {
	f := c.factor
	if f <= 0 {
		f = 1
	}
	time.Sleep(time.Duration((to - from) / f * float64(time.Second)))
}

type config struct {
	policy       Policy
	shards       int
	matchWorkers int
	realTime     bool
	clock        Clock
	seed         int64
	strict       bool
	batchWindow  float64 // 0: instant dispatch
	batchAlgo    BatchAlgorithm
	maxPending   int // 0: unbounded admission

	roadnet  *RoadNetwork     // non-nil: street-graph metric (see WithRoadNetwork)
	distFunc geo.DistanceFunc // non-nil: caller-supplied metric, not journalable

	durDir string    // "": in-memory service, no write-ahead log
	dur    durConfig // durability knobs (see WithDurability)
}

// Option configures a Service at construction.
type Option func(*config) error

// WithDispatcher selects the dispatch policy; the default is MaxMargin.
func WithDispatcher(p Policy) Option {
	return func(c *config) error {
		if _, err := p.dispatcher(); err != nil {
			return err
		}
		c.policy = p
		return nil
	}
}

// WithShards runs candidate generation over n concurrent zone shards.
// Assignments are bit-identical for every shard count — only throughput
// changes — so the knob is purely operational. n must be ≥ 1; values
// above 1 enable the sharded source.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: shards %d, want ≥ 1", ErrInvalidOption, n)
		}
		c.shards = n
		return nil
	}
}

// WithMatchWorkers bounds the goroutines a batched service uses to
// solve each window's independent task–driver components concurrently
// (a window over a city fleet decomposes into many small components;
// see WithBatching). Assignments are bit-identical for every worker
// count — the knob is purely operational, like WithShards. n must be
// ≥ 1; 1 (the default) solves serially. It has no effect on an
// instant-dispatch service.
func WithMatchWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: match workers %d, want ≥ 1", ErrInvalidOption, n)
		}
		c.matchWorkers = n
		return nil
	}
}

// WithBatching switches the service from instant to windowed dispatch:
// submitted tasks accumulate in a batch window of `window` simulated
// seconds (anchored at the order that opened it) and are matched
// together at the window's close by a maximum-weight task–driver
// assignment under the chosen solver. SubmitTask then answers with a
// pending Assignment; the decision arrives on the event feed when the
// window closes (followed by an EventBatchClosed entry carrying the
// window's stats) and is queryable via Decision. The window must be a
// positive, finite number of seconds; anything else is rejected with
// ErrInvalidOption. WithBatching composes with WithShards, WithClock,
// WithSeed, WithStrictTimes and WithRealTime (which additionally closes
// due windows on the wall clock — see its comment); the WithDispatcher
// policy is not consulted in batched mode.
func WithBatching(window float64, algo BatchAlgorithm) Option {
	return func(c *config) error {
		if !(window > 0) || math.IsInf(window, 1) {
			return fmt.Errorf("%w: batch window must be a positive finite number of seconds, got %g", ErrInvalidOption, window)
		}
		if _, err := algo.sim(); err != nil {
			return err
		}
		c.batchWindow, c.batchAlgo = window, algo
		return nil
	}
}

// WithMaxPending bounds admission so overload sheds load instead of
// growing the market's queues without limit. On a batched service
// (WithBatching), a submission is shed with ErrOverloaded while the
// open window already holds n undecided orders — unless the submission
// itself closes that window first, in which case it is admitted so the
// market can always drain. On an instant service the bound applies to
// submissions in flight: at most n SubmitTask calls may be inside the
// service at once (meaningful when a pacing WithClock or slow hardware
// makes each decision take real time). A shed submission registers
// nothing: the task does not count toward Stats.Tasks, only
// Stats.Shed. n must be ≥ 1; without this option admission is
// unbounded.
func WithMaxPending(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: max pending %d, want ≥ 1", ErrInvalidOption, n)
		}
		c.maxPending = n
		return nil
	}
}

// WithRealTime frees drivers at their actual trip finish time instead
// of the served task's end deadline, giving the market extra capacity
// the paper's offline bound cannot represent. See the simulator's
// package documentation for the modelling trade-off.
//
// On a batched service (WithBatching), WithRealTime additionally marks
// the market as live: the service arms a wall-clock timer for each open
// window (one simulated second per wall second) so a quiet market still
// decides its pending orders on time, instead of waiting for the next
// submission to push the clock past the close. Replays that must stay
// bit-identical to the batch engine leave it off and drive the clock
// purely by event timestamps.
func WithRealTime() Option {
	return func(c *config) error {
		c.realTime = true
		return nil
	}
}

// WithClock paces event processing with the given clock; nil restores
// the default full-speed clock. A sleeping clock paces the whole
// service: operations serialize on the market, so while the clock
// sleeps through a simulated gap every other caller blocks (their
// contexts are checked before the market is entered, not during the
// sleep). Use pacing clocks for demos and animated replays, not for
// concurrent front ends.
func WithClock(clk Clock) Option {
	return func(c *config) error {
		c.clock = clk
		return nil
	}
}

// WithSeed seeds the RNG used for dispatch tie-breaking; the default
// seed is 1. Runs with equal inputs and seeds are deterministic.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithStrictTimes rejects any submission whose timestamp precedes the
// service's current time with ErrOutOfOrder, instead of the default
// behaviour of processing late events at the current time. Replays that
// must stay bit-identical to a batch simulation use strict times;
// live front ends with concurrent submitters generally should not.
func WithStrictTimes() Option {
	return func(c *config) error {
		c.strict = true
		return nil
	}
}
