package dispatch

// Branch-coverage companions to the behavioral suites: the option and
// policy vocabulary, the journal-failure refusal contract (a mutation
// the log cannot persist must not be applied), Restore's rejection of
// malformed logs, and the wall-clock window tick's journal/replay path.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wal"
)

func TestPolicyAndAlgoVocabulary(t *testing.T) {
	if got := Policy(99).String(); got != "Policy(99)" {
		t.Fatalf("Policy(99).String() = %q", got)
	}
	if got := BatchAlgorithm(7).String(); got != "BatchAlgorithm(7)" {
		t.Fatalf("BatchAlgorithm(7).String() = %q", got)
	}
	for _, name := range []string{"maxmargin", "nearest", "random"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if _, err := ParsePolicy("bogus"); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("ParsePolicy(bogus): err = %v, want ErrInvalidOption", err)
	}
	if _, err := New(overloadMarket(), WithDispatcher(Policy(99))); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("WithDispatcher(Policy(99)): err = %v, want ErrInvalidOption", err)
	}
}

func TestScaledClockAdvance(t *testing.T) {
	start := time.Now()
	ScaledClock(1e9).Advance(0, 5) // 5 market seconds at a billion-fold speedup
	ScaledClock(-1).Advance(2, 2)  // factor ≤ 0 falls back to real time; zero span
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("scaled advances took %v", el)
	}
}

func TestSimErrVocabulary(t *testing.T) {
	if err := simErr(fmt.Errorf("stream: %w", sim.ErrFinished)); !errors.Is(err, ErrFinished) {
		t.Fatalf("simErr(ErrFinished) = %v, want ErrFinished", err)
	}
	plain := errors.New("disk on fire")
	if err := simErr(plain); err != plain {
		t.Fatalf("simErr(plain) = %v, want passthrough", err)
	}
}

func TestMarketOverridesAndInvalidSpeed(t *testing.T) {
	m := overloadMarket()
	m.GasPerKm = 0.5
	m.Drivers[1].JoinAt = 10 // initial-fleet scheduled join
	svc, err := New(m)
	if err != nil {
		t.Fatalf("New with GasPerKm override: %v", err)
	}
	svc.Close()

	bad := overloadMarket()
	bad.SpeedKmh = -4
	if _, err := New(bad); !errors.Is(err, ErrInvalidDriver) {
		t.Fatalf("New with negative speed: err = %v, want ErrInvalidDriver", err)
	}
}

func TestCanceledContextRefusesCalls(t *testing.T) {
	svc, err := New(overloadMarket())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Decision(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decision: err = %v", err)
	}
	if err := svc.AddDriver(ctx, Driver{ID: 500}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddDriver: err = %v", err)
	}
	if err := svc.RetireDriver(ctx, 100, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("RetireDriver: err = %v", err)
	}
	if _, err := svc.CancelTask(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelTask: err = %v", err)
	}
	if _, err := svc.Snapshot(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Snapshot: err = %v", err)
	}
}

func TestStrictTimeOrderingAcrossMutators(t *testing.T) {
	svc, err := New(overloadMarket(), WithStrictTimes())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.SubmitTask(ctx, overloadTask(0, 100)); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	base := Point{Lat: 41.15, Lon: -8.61}
	late := Driver{ID: 500, Source: base, Dest: Point{Lat: base.Lat + 0.02, Lon: base.Lon + 0.02},
		Start: 0, End: 7200, JoinAt: 50}
	if err := svc.AddDriver(ctx, late); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("AddDriver in the past: err = %v, want ErrOutOfOrder", err)
	}
	if err := svc.RetireDriver(ctx, 100, 50); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("RetireDriver in the past: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := svc.CancelTask(ctx, 0, 50); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("CancelTask in the past: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := svc.CancelTask(ctx, 0, 100); !errors.Is(err, ErrInvalidCancel) {
		t.Fatalf("CancelTask at publish: err = %v, want ErrInvalidCancel", err)
	}
}

func TestAddDriverJoinEdges(t *testing.T) {
	svc, err := New(overloadMarket())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ctx := context.Background()
	base := Point{Lat: 41.15, Lon: -8.61}
	dest := Point{Lat: base.Lat + 0.02, Lon: base.Lon + 0.02}
	// JoinAt 0 means "now".
	if err := svc.AddDriver(ctx, Driver{ID: 600, Source: base, Dest: dest, Start: 0, End: 7200}); err != nil {
		t.Fatalf("AddDriver(now): %v", err)
	}
	// A negative JoinAt is clamped to now for scheduling but still fails
	// driver validation.
	if err := svc.AddDriver(ctx, Driver{ID: 601, Source: base, Dest: dest,
		Start: 0, End: 7200, JoinAt: -3}); !errors.Is(err, ErrInvalidDriver) {
		t.Fatalf("AddDriver(JoinAt<0): err = %v, want ErrInvalidDriver", err)
	}
}

func TestSubscribeLifecycleEdges(t *testing.T) {
	svc, err := New(overloadMarket())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ch, cancel := svc.Subscribe(0) // buffer ≤ 0 selects the default
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("cancelled subscription left its channel open")
	}
	svc.Close()
	ch2, cancel2 := svc.Subscribe(4)
	if _, open := <-ch2; open {
		t.Fatal("subscription on a closed service must be born closed")
	}
	cancel2()
}

// TestJournalSnapshotFailureRefusesMutations deletes the log directory
// out from under a durable service whose snapshot cadence forces a
// snapshot before every append: each mutation's journal write fails, so
// the mutation must be refused — and must not have been applied.
func TestJournalSnapshotFailureRefusesMutations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	svc, err := New(overloadMarket(),
		WithDurability(dir, DurFsync("off"), DurSnapshotEvery(1)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if _, err := svc.SubmitTask(ctx, overloadTask(0, 0)); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if err := svc.RetireDriver(ctx, 103, 0.5); err != nil {
		t.Fatalf("RetireDriver: %v", err)
	}
	if _, err := svc.SubmitTask(ctx, overloadTask(1, 2)); err != nil {
		t.Fatalf("SubmitTask past the retirement: %v", err)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
	if _, err := svc.SubmitTask(ctx, overloadTask(2, 3)); err == nil {
		t.Fatal("SubmitTask succeeded with the log gone")
	}
	if _, err := svc.Decision(ctx, 2); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("refused submission was registered anyway: %v", err)
	}
	base := Point{Lat: 41.15, Lon: -8.61}
	dest := Point{Lat: base.Lat + 0.02, Lon: base.Lon + 0.02}
	if err := svc.AddDriver(ctx, Driver{ID: 700, Source: base, Dest: dest, Start: 0, End: 7200, JoinAt: 3}); err == nil {
		t.Fatal("AddDriver succeeded with the log gone")
	}
	// The re-entry path journals too.
	if err := svc.AddDriver(ctx, Driver{ID: 103, Source: base, Dest: dest, Start: 0, End: 7200, JoinAt: 3}); err == nil {
		t.Fatal("rejoin succeeded with the log gone")
	}
	if err := svc.RetireDriver(ctx, 100, 3); err == nil {
		t.Fatal("RetireDriver succeeded with the log gone")
	}
	if _, err := svc.CancelTask(ctx, 0, 3); err == nil {
		t.Fatal("CancelTask succeeded with the log gone")
	}
	// Shutdown still settles the books, but reports the journal loss.
	if _, err := svc.Close(); err == nil {
		t.Fatal("Close reported no error for an unwritable final snapshot")
	}
}

// TestJournalAppendFailureRefusesMutations is the same drill through
// the append path: a tiny segment size forces a rotation (a new file in
// the deleted directory) on the next record.
func TestJournalAppendFailureRefusesMutations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	svc, err := New(overloadMarket(),
		WithDurability(dir, DurFsync("off"), DurSegmentBytes(64)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if _, err := svc.SubmitTask(ctx, overloadTask(0, 0)); err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
	if _, err := svc.SubmitTask(ctx, overloadTask(1, 1)); err == nil {
		t.Fatal("SubmitTask succeeded with the log gone")
	}
	svc.Close()
}

// mkRawLog writes a hand-crafted log: the given record payloads in
// order, then optionally a snapshot covering them.
func mkRawLog(t *testing.T, records [][]byte, snapshot []byte) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	lg, err := wal.Create(dir, wal.Options{Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("wal.Create: %v", err)
	}
	for i, r := range records {
		if _, err := lg.Append(r); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if snapshot != nil {
		if err := lg.WriteSnapshot(snapshot); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

func mustRecord(t *testing.T, typ byte, v any) []byte {
	t.Helper()
	payload, err := encodeRecord(typ, v)
	if err != nil {
		t.Fatalf("encodeRecord: %v", err)
	}
	return payload
}

func mkGenesis(t *testing.T, version int, m Market, fp configFingerprint) []byte {
	t.Helper()
	return mustRecord(t, recInit, initRecord{Version: version, Market: m, Config: fp})
}

func TestRestoreRejectsMalformedLogs(t *testing.T) {
	fp := fingerprint(config{policy: MaxMargin, shards: 1, seed: 1})
	genesis := mkGenesis(t, durVersion, overloadMarket(), fp)
	cases := []struct {
		name     string
		records  [][]byte
		snapshot []byte
		opts     []DurOption
		wantIs   error
		wantSub  string
	}{
		{name: "bad-duroption", records: [][]byte{genesis},
			opts: []DurOption{DurSnapshotEvery(0)}, wantIs: ErrInvalidOption},
		{name: "no-genesis", records: nil, wantIs: wal.ErrCorrupt},
		{name: "first-record-not-genesis",
			records: [][]byte{mustRecord(t, recSubmit, walRecord{})}, wantIs: wal.ErrCorrupt},
		{name: "genesis-bad-json", records: [][]byte{{recInit, 'x'}}, wantSub: "decoding genesis"},
		{name: "genesis-version-skew",
			records: [][]byte{mkGenesis(t, 99, overloadMarket(), fp)}, wantSub: "version 99"},
		{name: "genesis-bad-policy",
			records: [][]byte{mkGenesis(t, durVersion, overloadMarket(), configFingerprint{Policy: "bogus", Shards: 1, Seed: 1})},
			wantIs:  ErrInvalidOption},
		{name: "genesis-bad-market",
			records: [][]byte{mkGenesis(t, durVersion, Market{SpeedKmh: -1}, fp)},
			wantSub: "rebuilding service"},
		{name: "snapshot-bad-json", records: [][]byte{genesis},
			snapshot: []byte("junk"), wantSub: "decoding snapshot"},
		{name: "snapshot-version-skew", records: [][]byte{genesis},
			snapshot: mustJSON(t, snapPayload{Version: 99}), wantSub: "version 99"},
		{name: "snapshot-no-state", records: [][]byte{genesis},
			snapshot: mustJSON(t, snapPayload{Version: durVersion,
				Init: initRecord{Version: durVersion, Market: overloadMarket(), Config: fp}}),
			wantSub: "no stream state"},
		{name: "replay-empty-record",
			records: [][]byte{genesis, {}}, wantSub: "empty journal record"},
		{name: "replay-unknown-type",
			records: [][]byte{genesis, {99, '{', '}'}}, wantSub: "unknown record type"},
		{name: "replay-submit-without-task",
			records: [][]byte{genesis, mustRecord(t, recSubmit, walRecord{})}, wantSub: "no task"},
		{name: "replay-join-without-driver",
			records: [][]byte{genesis, mustRecord(t, recAddDriver, walRecord{})}, wantSub: "no driver"},
		{name: "replay-genesis-mid-log",
			records: [][]byte{genesis, genesis}, wantSub: "genesis record mid-log"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := mkRawLog(t, tc.records, tc.snapshot)
			_, err := Restore(dir, tc.opts...)
			if err == nil {
				t.Fatal("Restore accepted a malformed log")
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Fatalf("err = %v, want %v", err, tc.wantIs)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

// TestRestoreReplaysDriverJoin replays a journaled AddDriver through a
// crafted log and checks the driver is present in the rebuilt market.
func TestRestoreReplaysDriverJoin(t *testing.T) {
	fp := fingerprint(config{policy: MaxMargin, shards: 1, seed: 1})
	base := Point{Lat: 41.15, Lon: -8.61}
	join := Driver{ID: 900, Source: base, Dest: Point{Lat: base.Lat + 0.02, Lon: base.Lon + 0.02},
		Start: 0, End: 7200}
	task := overloadTask(0, 1)
	dir := mkRawLog(t, [][]byte{
		mkGenesis(t, durVersion, overloadMarket(), fp),
		mustRecord(t, recAddDriver, walRecord{Driver: &join}),
		mustRecord(t, recSubmit, walRecord{Task: &task}),
	}, nil)
	svc, err := Restore(dir, DurFsync("off"))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	st, err := svc.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st.Drivers != 5 {
		t.Fatalf("restored fleet = %d drivers, want 5 (4 initial + 1 replayed join)", st.Drivers)
	}
	if st.Tasks != 1 {
		t.Fatalf("restored tasks = %d, want 1", st.Tasks)
	}
	if _, err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRestoreRejectsDuplicateSnapshotIDs mutates a genuine snapshot so
// it registers the same public driver (then task) twice: loadSnapshot
// must refuse rather than silently clobber the ID maps.
func TestRestoreRejectsDuplicateSnapshotIDs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	svc, err := New(overloadMarket(),
		WithDurability(dir, DurFsync("off"), DurSnapshotEvery(1)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := svc.SubmitTask(ctx, overloadTask(i, float64(i))); err != nil {
			t.Fatalf("SubmitTask(%d): %v", i, err)
		}
	}
	if _, err := svc.Halt(); err != nil {
		t.Fatalf("Halt: %v", err)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Snapshot == nil {
		t.Fatal("no snapshot despite DurSnapshotEvery(1)")
	}
	var snap snapPayload
	if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if len(snap.TaskIDs) == 0 {
		t.Fatal("snapshot registered no tasks")
	}
	mutations := []struct {
		name string
		mut  func(*snapPayload)
	}{
		{"dup-driver", func(s *snapPayload) { s.DriverIDs = append(s.DriverIDs, s.DriverIDs[0]) }},
		{"dup-task", func(s *snapPayload) { s.TaskIDs = append(s.TaskIDs, s.TaskIDs[0]) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := snap
			bad.DriverIDs = append([]int(nil), snap.DriverIDs...)
			bad.TaskIDs = append([]int(nil), snap.TaskIDs...)
			m.mut(&bad)
			dir := mkRawLog(t, [][]byte{mkGenesis(t, durVersion, overloadMarket(), snap.Init.Config)},
				mustJSON(t, bad))
			if _, err := Restore(dir); err == nil || !strings.Contains(err.Error(), "twice") {
				t.Fatalf("Restore(err) = %v, want duplicate-registration refusal", err)
			}
		})
	}
}

func TestFingerprintOptionsRoundTrip(t *testing.T) {
	fp := configFingerprint{Policy: "nearest", Shards: 4, MatchWorkers: 2, RealTime: true,
		Seed: 7, Strict: true, BatchWindow: 30, BatchAlgo: "auction", MaxPending: 9}
	opts, err := fp.options()
	if err != nil {
		t.Fatalf("options(): %v", err)
	}
	c := config{policy: MaxMargin, shards: 1, seed: 1}
	for _, o := range opts {
		if err := o(&c); err != nil {
			t.Fatalf("applying option: %v", err)
		}
	}
	if got := fingerprint(c); got != fp {
		t.Fatalf("round trip drifted:\n got  %+v\n want %+v", got, fp)
	}
	bad := fp
	bad.BatchAlgo = "bogus"
	if _, err := bad.options(); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("options() with bad algo: err = %v, want ErrInvalidOption", err)
	}
}

// TestRealTimeWindowTickJournaled drives a durable real-time batched
// service: the wall-clock timer closes the window (journaling the tick
// as a recAdvance record), the service is halted, and Restore replays
// the tick to reach the same decision.
func TestRealTimeWindowTickJournaled(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	svc, err := New(overloadMarket(),
		WithBatching(0.05, Hungarian), WithRealTime(),
		WithDurability(dir, DurFsync("off")))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	a, err := svc.SubmitTask(ctx, overloadTask(0, 0))
	if err != nil {
		t.Fatalf("SubmitTask: %v", err)
	}
	if !a.Pending {
		t.Fatalf("batched submission decided instantly: %+v", a)
	}
	var want Assignment
	deadline := time.Now().Add(10 * time.Second)
	for {
		want, err = svc.Decision(ctx, 0)
		if err != nil {
			t.Fatalf("Decision: %v", err)
		}
		if !want.Pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window timer never closed the batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := svc.Halt(); err != nil {
		t.Fatalf("Halt: %v", err)
	}

	restored, err := Restore(dir, DurFsync("off"))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got, err := restored.Decision(ctx, 0)
	if err != nil {
		t.Fatalf("restored Decision: %v", err)
	}
	if got != want {
		t.Fatalf("replayed window tick diverged:\n got  %+v\n want %+v", got, want)
	}
	if _, err := restored.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShutdownStopsArmedTimer halts (then closes) a real-time batched
// service while its window timer is armed and a subscriber is live.
func TestShutdownStopsArmedTimer(t *testing.T) {
	for _, stop := range []struct {
		name string
		call func(*Service) (Stats, error)
	}{
		{"close", (*Service).Close},
		{"halt", (*Service).Halt},
	} {
		t.Run(stop.name, func(t *testing.T) {
			svc, err := New(overloadMarket(), WithBatching(30, Hungarian), WithRealTime())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ch, cancel := svc.Subscribe(8)
			defer cancel()
			if _, err := svc.SubmitTask(context.Background(), overloadTask(0, 0)); err != nil {
				t.Fatalf("SubmitTask: %v", err)
			}
			if _, err := stop.call(svc); err != nil {
				t.Fatalf("%s: %v", stop.name, err)
			}
			for range ch { // shutdown must close the feed
			}
		})
	}
}
