package dispatch

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// settleTrace replays a whole trace through a fresh service and closes
// it, returning the settled result.
func settleTrace(t *testing.T, tr model.Trace, opts ...Option) *sim.Result {
	t.Helper()
	svc := replayTrace(t, tr, opts...)
	if _, err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return svc.final
}

// TestWithRoadNetworkChangesOutcome: the street-graph metric must
// actually reach the dispatch path — a day replayed under
// WithRoadNetwork settles differently from the crow-fly day — and must
// be deterministic: two services built from the same RoadNetwork config
// settle bit-identically.
func TestWithRoadNetworkChangesOutcome(t *testing.T) {
	cfg := trace.NewConfig(71, 90, 40, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	crow := settleTrace(t, tr, WithSeed(3))
	netA := settleTrace(t, tr, WithSeed(3), WithRoadNetwork(RoadNetwork{}))
	netB := settleTrace(t, tr, WithSeed(3), WithRoadNetwork(RoadNetwork{}))

	if crow.Served == 0 || netA.Served == 0 {
		t.Fatalf("degenerate day: crow served %d, network served %d", crow.Served, netA.Served)
	}
	if reflect.DeepEqual(crow, netA) {
		t.Fatal("WithRoadNetwork settled bit-identical to crow-fly; the metric is not wired into dispatch")
	}
	if !reflect.DeepEqual(netA, netB) {
		t.Fatal("two services with the same RoadNetwork config settled differently")
	}
}

// TestWithRoadNetworkShardWorkerIdentity: under the network metric the
// operational knobs stay purely operational — batched days are
// bit-identical across shard and match-worker counts.
func TestWithRoadNetworkShardWorkerIdentity(t *testing.T) {
	cfg := trace.NewConfig(73, 110, 60, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(5, 0.3, 0.25))

	rn := RoadNetwork{Rows: 12, Cols: 14}
	var want *sim.Result
	for _, sw := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {4, 1}, {1, 4}} {
		shards, workers := sw[0], sw[1]
		t.Run(fmt.Sprintf("shards-%d-workers-%d", shards, workers), func(t *testing.T) {
			opts := []Option{WithSeed(5), WithBatching(45, Hungarian), WithRoadNetwork(rn)}
			if shards > 1 {
				opts = append(opts, WithShards(shards))
			}
			if workers > 1 {
				opts = append(opts, WithMatchWorkers(workers))
			}
			got := settleTrace(t, tr, opts...)
			if want == nil {
				want = got
				if got.Served == 0 {
					t.Fatal("degenerate baseline: nothing served")
				}
				return
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("network-metric day diverged at shards=%d workers=%d: served %d vs %d, revenue %.9f vs %.9f — this is a bug",
					shards, workers, got.Served, want.Served, got.Revenue, want.Revenue)
			}
		})
	}
}

// TestWithRoadNetworkAlgoIdentity: the routing kernel must be invisible
// in the books. Full trace replays — instant and batched, across shard
// and match-worker counts, under churn — settle bit-identically whether
// the router runs contraction hierarchies or landmark A*, because both
// kernels return bitwise-equal distances (and the CH one-to-many batch
// path is bitwise-equal to looped lookups).
func TestWithRoadNetworkAlgoIdentity(t *testing.T) {
	cfg := trace.NewConfig(89, 100, 50, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(7, 0.3, 0.25))

	for _, batched := range []bool{false, true} {
		var want *sim.Result
		for _, algo := range []string{"ch", "alt"} {
			for _, sw := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
				shards, workers := sw[0], sw[1]
				name := fmt.Sprintf("batched-%v-%s-shards-%d-workers-%d", batched, algo, shards, workers)
				opts := []Option{WithSeed(5), WithRoadNetwork(RoadNetwork{Rows: 12, Cols: 14, Algo: algo})}
				if batched {
					opts = append(opts, WithBatching(45, Hungarian))
				}
				if shards > 1 {
					opts = append(opts, WithShards(shards))
				}
				if workers > 1 {
					opts = append(opts, WithMatchWorkers(workers))
				}
				got := settleTrace(t, tr, opts...)
				if want == nil {
					want = got
					if got.Served == 0 {
						t.Fatalf("%s: degenerate baseline: nothing served", name)
					}
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s diverged from the ch baseline: served %d vs %d, revenue %.9f vs %.9f — this is a bug",
						name, got.Served, want.Served, got.Revenue, want.Revenue)
				}
			}
		}
	}
}

// TestDurableRoadNetworkAlgoRestore: the Algo choice is journaled and
// survives a crash, and an ALT day restored mid-flight still settles
// bit-identical to an uninterrupted CH day — kernel and crash recovery
// are both invisible.
func TestDurableRoadNetworkAlgoRestore(t *testing.T) {
	cfg := trace.NewConfig(97, 80, 30, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	market, feed := durFeed(tr)

	ref, err := New(market, WithSeed(7), WithBatching(45, Hungarian),
		WithRoadNetwork(RoadNetwork{Rows: 12, Cols: 14, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, ref, tr, feed)
	if _, err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rn := RoadNetwork{Rows: 12, Cols: 14, Seed: 2, Algo: "alt"}
	svc, err := New(market, WithSeed(7), WithBatching(45, Hungarian), WithRoadNetwork(rn),
		WithDurability(dir, DurFsync("interval")))
	if err != nil {
		t.Fatal(err)
	}
	cut := len(feed) / 2
	applyFeed(t, svc, tr, feed[:cut])
	svc = nil // crash: journal abandoned, nothing flushed

	restored, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := restored.cfg.roadnet; got == nil || got.Algo != "alt" {
		t.Fatalf("restored service lost the routing kernel choice: %+v", got)
	}
	applyFeed(t, restored, tr, feed[cut:])
	if _, err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.final, restored.final) {
		t.Fatalf("alt restore settled differently from uninterrupted ch day (served %d vs %d, revenue %.9f vs %.9f)",
			restored.final.Served, ref.final.Served, restored.final.Revenue, ref.final.Revenue)
	}
}

// TestWithDistanceFunc: an arbitrary metric is honored (an inflated
// crow-fly changes the books) but refuses to combine with durability.
func TestWithDistanceFunc(t *testing.T) {
	cfg := trace.NewConfig(79, 70, 30, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	inflated := func(a, b Point) float64 {
		return 1.3 * geo.Equirectangular(geo.Point(a), geo.Point(b))
	}
	crow := settleTrace(t, tr, WithSeed(3))
	inf := settleTrace(t, tr, WithSeed(3), WithDistanceFunc(inflated))
	if reflect.DeepEqual(crow, inf) {
		t.Fatal("WithDistanceFunc settled bit-identical to the default metric; the function is not wired in")
	}

	if _, err := New(Market{}, WithDistanceFunc(nil)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("nil distance function: err = %v, want ErrInvalidOption", err)
	}
	if _, err := New(Market{}, WithDistanceFunc(inflated), WithDurability(t.TempDir())); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("WithDistanceFunc + WithDurability: err = %v, want ErrInvalidOption", err)
	}
}

// TestRoadNetworkOptionValidation covers the rejection surface: bad
// grids, bad cache bounds and the mutual exclusion with
// WithDistanceFunc in both orders.
func TestRoadNetworkOptionValidation(t *testing.T) {
	bad := []RoadNetwork{
		{Rows: 1},
		{Cols: 1},
		{Rows: -3, Cols: 10},
		{CacheEntries: -1},
		{Algo: "dijkstra"},
		{Algo: "CH"}, // case-sensitive: the journaled string is canonical
	}
	for _, rn := range bad {
		if _, err := New(Market{}, WithRoadNetwork(rn)); !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithRoadNetwork(%+v): err = %v, want ErrInvalidOption", rn, err)
		}
	}
	dist := func(a, b Point) float64 { return geo.Equirectangular(geo.Point(a), geo.Point(b)) }
	if _, err := New(Market{}, WithRoadNetwork(RoadNetwork{}), WithDistanceFunc(dist)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("roadnet then distfunc: err = %v, want ErrInvalidOption", err)
	}
	if _, err := New(Market{}, WithDistanceFunc(dist), WithRoadNetwork(RoadNetwork{})); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("distfunc then roadnet: err = %v, want ErrInvalidOption", err)
	}
}

// TestDurableRoadNetworkRestore: the network metric survives a crash.
// A durable WithRoadNetwork service abandoned mid-day and rebuilt with
// Restore — which must regenerate the identical seeded graph from the
// journaled fingerprint — settles bit-identical to an uninterrupted
// in-memory service under the same metric.
func TestDurableRoadNetworkRestore(t *testing.T) {
	cfg := trace.NewConfig(83, 80, 30, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	tr.Events = trace.WithChurn(tr, trace.DefaultChurn(6, 0.3, 0.25))
	market, feed := durFeed(tr)

	rn := RoadNetwork{Rows: 12, Cols: 14, Seed: 2}
	ref, err := New(market, WithSeed(7), WithBatching(45, Hungarian), WithRoadNetwork(rn))
	if err != nil {
		t.Fatal(err)
	}
	applyFeed(t, ref, tr, feed)
	wantStats, err := ref.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, len(feed) / 2, len(feed) - 1} {
		dir := t.TempDir()
		svc, err := New(market, WithSeed(7), WithBatching(45, Hungarian), WithRoadNetwork(rn),
			WithDurability(dir, DurFsync("interval")))
		if err != nil {
			t.Fatal(err)
		}
		if got := svc.cfg.roadnet; got == nil || got.Rows != 12 || got.Cols != 14 || got.Seed != 2 || got.CacheEntries == 0 {
			t.Fatalf("cut %d: normalized roadnet config not retained: %+v", cut, got)
		}
		applyFeed(t, svc, tr, feed[:cut])
		svc = nil // crash: journal abandoned, nothing flushed

		restored, err := Restore(dir)
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if got := restored.cfg.roadnet; got == nil || got.Rows != 12 || got.Cols != 14 || got.Seed != 2 {
			t.Fatalf("cut %d: restored service lost the road network config: %+v", cut, got)
		}
		applyFeed(t, restored, tr, feed[cut:])
		gotStats, err := restored.Close()
		if err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		gotStats.FeedDrops, wantStats.FeedDrops = 0, 0
		if !reflect.DeepEqual(wantStats, gotStats) {
			t.Fatalf("cut %d: stats diverged\nwant %+v\ngot  %+v", cut, wantStats, gotStats)
		}
		if !reflect.DeepEqual(ref.final, restored.final) {
			t.Fatalf("cut %d: settled result diverged (served %d vs %d, revenue %.9f vs %.9f)",
				cut, ref.final.Served, restored.final.Served, ref.final.Revenue, restored.final.Revenue)
		}
	}
}
