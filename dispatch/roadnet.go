package dispatch

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// RoadNetwork configures the road-network distance rail: a synthetic
// street graph over the Porto box whose shortest-path lengths replace
// the default crow-fly metric for every travel-time, cost and deadline
// computation the service makes. The struct is plain data — it
// serializes into the durability journal, so a restored service rebuilds
// the identical graph and router (the generator is seeded).
//
// Zero values take the defaults of the internal generator's Porto grid
// (20×24 intersections, seed 1) and router (2²⁰ cached node pairs).
type RoadNetwork struct {
	// Rows and Cols size the street grid; both must be ≥ 2.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Seed drives the generator's street removal, diagonal avenues and
	// node jitter.
	Seed int64 `json:"seed,omitempty"`
	// CacheEntries bounds the router's route cache (node pairs held
	// across all shards); must be ≥ 0, where 0 means the default.
	CacheEntries int `json:"cache_entries,omitempty"`
	// Algo selects the routing kernel: "" or "ch" for contraction
	// hierarchies (the default; enables one-to-many candidate
	// batching), "alt" for landmark A*. The kernels return bitwise
	// identical distances, so replays and restores may mix them.
	Algo string `json:"algo,omitempty"`
}

// normalized resolves zero fields to their defaults so the value stored
// in the config — and journaled by the durable rail — is self-contained.
func (rn RoadNetwork) normalized() (RoadNetwork, error) {
	def := roadnet.DefaultGridConfig()
	if rn.Rows == 0 {
		rn.Rows = def.Rows
	}
	if rn.Cols == 0 {
		rn.Cols = def.Cols
	}
	if rn.Seed == 0 {
		rn.Seed = def.Seed
	}
	if rn.CacheEntries == 0 {
		rn.CacheEntries = roadnet.DefaultCacheEntries
	}
	if rn.Rows < 2 || rn.Cols < 2 {
		return rn, fmt.Errorf("%w: road network %dx%d, want at least 2x2 intersections", ErrInvalidOption, rn.Rows, rn.Cols)
	}
	if rn.CacheEntries < 0 {
		return rn, fmt.Errorf("%w: road network cache entries %d, want ≥ 0", ErrInvalidOption, rn.CacheEntries)
	}
	if rn.Algo == "" {
		rn.Algo = roadnet.AlgoCH.String()
	}
	if _, err := rn.algorithm(); err != nil {
		return rn, err
	}
	return rn, nil
}

// algorithm maps the Algo string onto the router's kernel enum.
func (rn RoadNetwork) algorithm() (roadnet.Algorithm, error) {
	switch rn.Algo {
	case "", roadnet.AlgoCH.String():
		return roadnet.AlgoCH, nil
	case roadnet.AlgoALT.String():
		return roadnet.AlgoALT, nil
	}
	return 0, fmt.Errorf("%w: road network algo %q, want %q or %q", ErrInvalidOption, rn.Algo, roadnet.AlgoCH, roadnet.AlgoALT)
}

// build generates the street graph and wraps it in a router whose Dist
// becomes the market metric.
func (rn RoadNetwork) build() (*roadnet.Router, error) {
	gcfg := roadnet.DefaultGridConfig()
	gcfg.Rows, gcfg.Cols, gcfg.Seed = rn.Rows, rn.Cols, rn.Seed
	g, err := roadnet.GenerateGrid(gcfg)
	if err != nil {
		return nil, fmt.Errorf("%w: road network: %v", ErrInvalidOption, err)
	}
	algo, err := rn.algorithm()
	if err != nil {
		return nil, err
	}
	r := roadnet.NewRouterAlgo(g, gcfg.Box, 0, algo)
	r.SetCacheBound(rn.CacheEntries)
	return r, nil
}

// WithRoadNetwork routes every distance the service computes over a
// seeded synthetic street graph instead of the default crow-fly metric:
// travel times, feasibility deadlines and trip costs all reflect street
// circuity (network distance is never below crow-fly, so ring-pruned
// candidate generation stays exact). The option is serializable —
// unlike WithDistanceFunc it composes with WithDurability, and Restore
// rebuilds the identical graph from the journaled configuration.
// Mutually exclusive with WithDistanceFunc.
func WithRoadNetwork(rn RoadNetwork) Option {
	return func(c *config) error {
		if c.distFunc != nil {
			return fmt.Errorf("%w: WithRoadNetwork and WithDistanceFunc are mutually exclusive", ErrInvalidOption)
		}
		norm, err := rn.normalized()
		if err != nil {
			return err
		}
		c.roadnet = &norm
		return nil
	}
}

// WithDistanceFunc replaces the market metric with an arbitrary
// kilometre distance function. The function must be non-negative,
// finite, safe for concurrent calls, and should
// dominate crow-fly distance if candidate ring pruning is to stay
// exact; the service calls it on every feasibility and cost evaluation.
// An arbitrary function cannot be journaled, so this option refuses to
// combine with WithDurability — use WithRoadNetwork for a durable
// network metric. Mutually exclusive with WithRoadNetwork.
func WithDistanceFunc(f func(a, b Point) float64) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("%w: nil distance function", ErrInvalidOption)
		}
		if c.roadnet != nil {
			return fmt.Errorf("%w: WithRoadNetwork and WithDistanceFunc are mutually exclusive", ErrInvalidOption)
		}
		c.distFunc = func(a, b geo.Point) float64 {
			return f(Point{Lat: a.Lat, Lon: a.Lon}, Point{Lat: b.Lat, Lon: b.Lon})
		}
		return nil
	}
}
