// Package dispatch is the public face of the ride-sharing market
// framework: a long-lived, incremental dispatch service for the online
// market of the source paper (Jia, Xu, Liu — ICDCS 2017). Where the
// internal simulator replays a complete day's trace in one call, a
// Service keeps the market open: tasks are submitted one at a time and
// answered instantly, drivers join and retire while the market runs,
// riders cancel before pickup, and every decision streams out on a
// subscribable event feed.
//
// Construct a Service with New over an initial Market (fleet plus cost
// constants) and functional options:
//
//	svc, err := dispatch.New(dispatch.Market{Drivers: fleet},
//	    dispatch.WithDispatcher(dispatch.MaxMargin),
//	    dispatch.WithShards(4),
//	    dispatch.WithSeed(7))
//
// then drive it with SubmitTask / AddDriver / RetireDriver /
// CancelTask, observe it with Snapshot and Subscribe, and settle the
// books with Close.
//
// By default every task is answered the instant it is submitted. A
// service built WithBatching(window, algo) instead accumulates the
// orders of each window and clears them together with a maximum-weight
// matching (Hungarian or Auction) at the window close: SubmitTask
// returns a pending Assignment, the decision arrives on the event feed
// (and via Decision) when the window closes, and an EventBatchClosed
// feed entry carries each window's stats. Windows close when market
// time passes them — and additionally on the wall clock when the
// service is built WithRealTime, so a live market with no follow-up
// traffic still answers its riders.
//
// Determinism is part of the contract: a Service fed a day's tasks and
// fleet events in timestamp order produces assignments bit-identical to
// the internal batch simulator replaying the same day in one call,
// whatever the shard count — the differential tests in this package
// hold that guarantee. Late submissions (timestamps before the
// service's current time) are processed at the current time, or
// rejected when the service is built WithStrictTimes.
//
// All times are float64 seconds on one market-wide clock, distances are
// kilometres, money is in abstract currency units — the conventions of
// the paper's Table I.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/sim"
)

// Point is a WGS84 coordinate.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Driver is one worker in the market: she starts her day at Source,
// must end it at Dest inside [Start, End], and serves tasks along the
// way.
type Driver struct {
	// ID is the caller's identifier for the driver; it must be unique
	// across the fleet.
	ID     int     `json:"id"`
	Source Point   `json:"source"`
	Dest   Point   `json:"dest"`
	Start  float64 `json:"start"` // earliest departure (seconds)
	End    float64 `json:"end"`   // latest arrival at Dest (seconds)

	// SpeedKmh optionally overrides the market-wide driving speed for
	// this driver; 0 uses the market default.
	SpeedKmh float64 `json:"speed_kmh,omitempty"`

	// JoinAt is when the platform learns the driver exists. Zero means
	// she is known upfront; a positive value keeps her invisible to
	// dispatch until that instant (a mid-day announcement). For
	// drivers added to a running service, zero means "now".
	JoinAt float64 `json:"join_at,omitempty"`
}

// Task is one rider order: pick up at Source by StartBy, drop off at
// Dest by EndBy, paying Price to the serving driver.
type Task struct {
	// ID is the caller's identifier for the task; it must be unique
	// across the day.
	ID      int     `json:"id"`
	Publish float64 `json:"publish"` // when the rider submits the order
	Source  Point   `json:"source"`
	Dest    Point   `json:"dest"`
	StartBy float64 `json:"start_by"` // pickup deadline
	EndBy   float64 `json:"end_by"`   // dropoff deadline

	Price float64 `json:"price"` // payoff to the serving driver
	// WTP is the rider's willingness to pay; zero defaults to Price
	// (the platform captured the full surplus).
	WTP float64 `json:"wtp,omitempty"`
}

// Market is the initial state of the two-sided market: the cost-model
// constants and the fleet known at opening time.
type Market struct {
	// SpeedKmh is the estimated average driving speed used to convert
	// distances into travel times; 0 uses the default 30 km/h.
	SpeedKmh float64 `json:"speed_kmh,omitempty"`
	// GasPerKm is the travel cost per kilometre; 0 uses the default
	// 0.09 currency units.
	GasPerKm float64 `json:"gas_per_km,omitempty"`

	Drivers []Driver `json:"drivers"`
}

// Assignment is the platform's answer to one submitted task. An
// instant service decides on the spot; a batched service (WithBatching)
// first answers with a pending handle — Pending true, DecideBy set —
// and delivers the decided form on the event feed at the window close
// (also queryable via Decision).
type Assignment struct {
	TaskID   int  `json:"task_id"`
	Assigned bool `json:"assigned"`
	// DriverID identifies the assigned driver, -1 when the task was
	// rejected (or is still pending).
	DriverID int `json:"driver_id"`
	// PickupBy is the assigned driver's estimated arrival time at the
	// pickup; meaningful only when Assigned.
	PickupBy float64 `json:"pickup_by,omitempty"`
	// DecidedAt is the effective decision time (the task's publish
	// time, or the service's current time for late submissions). For a
	// pending answer it is the time the order joined its window.
	DecidedAt float64 `json:"decided_at"`
	// Pending reports that the service dispatches in batched mode and
	// the decision is deferred to the close of the window the task
	// joined; DecideBy is that window's scheduled close time.
	Pending  bool    `json:"pending,omitempty"`
	DecideBy float64 `json:"decide_by,omitempty"`
}

// CancelOutcome reports what a rider cancellation achieved.
type CancelOutcome struct {
	TaskID int `json:"task_id"`
	// Cancelled reports whether the cancellation took effect; false
	// means it arrived after pickup (or the task was never assigned)
	// and any ride proceeds.
	Cancelled bool `json:"cancelled"`
	// FreedDriverID is the driver released back into the market when
	// an assignment was revoked, -1 otherwise.
	FreedDriverID int `json:"freed_driver_id"`
}

// Stats is an aggregate view of the market, mid-run (Snapshot) or final
// (Close). Financial fields are settled as if every in-flight
// commitment ran to completion at the moment of the snapshot.
type Stats struct {
	Now            float64 `json:"now"` // latest processed event time
	Drivers        int     `json:"drivers"`
	PresentDrivers int     `json:"present_drivers"`
	Tasks          int     `json:"tasks"` // submitted so far
	Served         int     `json:"served"`
	Rejected       int     `json:"rejected"`
	Cancelled      int     `json:"cancelled"`
	// Pending counts orders waiting in a batched service's open window
	// for their decision; always 0 on an instant service, and 0 after
	// Close. Served + Rejected + Cancelled + Pending == Tasks.
	Pending int     `json:"pending,omitempty"`
	Revenue float64 `json:"revenue"`
	Profit  float64 `json:"profit"` // drivers' total profit (Eq. 4)

	// Shed counts submissions refused with ErrOverloaded at the
	// WithMaxPending admission bound. Shed submissions never register,
	// so they are outside Tasks and the books identity above.
	Shed int `json:"shed,omitempty"`
	// MaxPending echoes the WithMaxPending bound, 0 when admission is
	// unbounded.
	MaxPending int `json:"max_pending,omitempty"`
	// FeedDrops counts events dropped across all feed subscribers whose
	// buffers were full (each drop run is followed by an EventGap notice
	// on the affected subscriber's channel).
	FeedDrops int `json:"feed_drops,omitempty"`
}

// Service is a running dispatch market. It is safe for concurrent use:
// operations serialize on an internal mutex and are applied in arrival
// order. Construct with New, shut down with Close.
type Service struct {
	mu     sync.Mutex
	st     *sim.Stream
	strict bool
	closed bool

	drivers   map[int]int  // public driver ID -> engine index
	driverIDs []int        // engine index -> public driver ID
	retired   map[int]bool // driver IDs retired (possibly at a future time)
	tasks     map[int]int  // public task ID -> engine index
	taskIDs   []int        // engine index -> public task ID

	// Batched mode (WithBatching): decided records the platform's
	// answer per task as it lands — instantly, or at a window close —
	// for Decision queries; liveBatch arms the wall-clock window timer
	// (WithRealTime on a batched service).
	batched   bool
	liveBatch bool
	decided   map[int]Assignment
	timer     *time.Timer
	timerAt   float64

	// final is the full settled simulator result, kept after Close for
	// the differential tests that compare a service replay bit-for-bit
	// against the batch engine.
	final      *sim.Result
	finalStats Stats

	// Admission bound (WithMaxPending). shed and inflight are atomics
	// because the instant-mode gate runs before the mutex is taken —
	// that is the point: a submission blocked behind a slow decision
	// must be refusable without waiting for it.
	maxPending int
	shed       atomic.Int64
	inflight   atomic.Int64

	subs      map[int]*subscriber
	nextSub   int
	feedDrops int // total events dropped across all subscribers

	// Durable rail (WithDurability): jr journals every externally
	// injected mutation to the write-ahead log before it is applied and
	// cuts periodic snapshots; nil on in-memory services. mkt and cfg
	// are retained for snapshot payloads and Restore validation.
	jr  *journal
	mkt Market
	cfg config
}

// New opens a dispatch service over the market. Drivers with a positive
// JoinAt stay invisible to dispatch until that time; everyone else is
// present from the start. The returned service accepts traffic until
// Close.
func New(m Market, opts ...Option) (*Service, error) {
	cfg := config{policy: MaxMargin, shards: 1, seed: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	d, err := cfg.policy.dispatcher()
	if err != nil {
		return nil, err
	}

	mkt := model.DefaultMarket()
	if m.SpeedKmh != 0 {
		mkt.SpeedKmh = m.SpeedKmh
	}
	if m.GasPerKm != 0 {
		mkt.GasPerKm = m.GasPerKm
	}
	switch {
	case cfg.distFunc != nil:
		if cfg.durDir != "" {
			return nil, fmt.Errorf("%w: WithDistanceFunc cannot be journaled; a durable service needs WithRoadNetwork", ErrInvalidOption)
		}
		mkt.Dist = cfg.distFunc
	case cfg.roadnet != nil:
		router, rerr := cfg.roadnet.build()
		if rerr != nil {
			return nil, rerr
		}
		mkt.Dist = router.Dist
		// The router's one-to-many queries are bitwise equal to looped
		// Dist calls, so the engine may batch candidate scoring through
		// it without perturbing a single decision.
		mkt.Batch = router
	}

	s := &Service{
		strict:     cfg.strict,
		drivers:    make(map[int]int, len(m.Drivers)),
		retired:    make(map[int]bool),
		tasks:      make(map[int]int),
		decided:    make(map[int]Assignment),
		batched:    cfg.batchWindow > 0,
		liveBatch:  cfg.batchWindow > 0 && cfg.realTime,
		maxPending: cfg.maxPending,
		subs:       make(map[int]*subscriber),
		mkt:        m,
		cfg:        cfg,
	}
	drivers := make([]model.Driver, len(m.Drivers))
	var fleet []model.MarketEvent
	for i, pd := range m.Drivers {
		if _, dup := s.drivers[pd.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateDriver, pd.ID)
		}
		md, err := toModelDriver(pd)
		if err != nil {
			return nil, err
		}
		drivers[i] = md
		s.drivers[pd.ID] = i
		s.driverIDs = append(s.driverIDs, pd.ID)
		if pd.JoinAt > 0 {
			fleet = append(fleet, model.MarketEvent{At: pd.JoinAt, Kind: model.EventJoin, Driver: i})
		}
	}

	eng, err := sim.New(mkt, drivers, cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidDriver, err)
	}
	eng.RealTime = cfg.realTime
	if cfg.clock != nil {
		eng.Clock = cfg.clock
	}
	if cfg.shards > 1 {
		eng.SetCandidateSource(sim.NewShardedSource(cfg.shards))
	}
	eng.MatchWorkers = cfg.matchWorkers
	var st *sim.Stream
	if s.batched {
		algo, aerr := cfg.batchAlgo.sim()
		if aerr != nil {
			return nil, aerr
		}
		st, err = eng.NewBatchedStream(cfg.batchWindow, algo, fleet)
	} else {
		st, err = eng.NewStream(d, fleet)
	}
	if err != nil {
		return nil, fmt.Errorf("dispatch: %v", err)
	}
	if s.batched {
		// Both handlers run synchronously inside whichever Service call
		// drains the window-close event, so the mutex is already held.
		st.SetDecisionHandler(s.onWindowDecision)
		st.SetBatchCloseHandler(s.onWindowClosed)
	}
	s.st = st
	if cfg.durDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// onWindowDecision records and publishes one deferred window-close
// decision. Called by the stream with the mutex held.
func (s *Service) onWindowDecision(dec sim.TaskDecision) {
	id := s.taskIDs[dec.Task]
	a := Assignment{TaskID: id, DriverID: -1, DecidedAt: dec.At}
	ev := Event{Type: EventRejected, At: dec.At, TaskID: id, DriverID: -1}
	if dec.Assigned {
		a.Assigned = true
		a.DriverID = s.driverIDs[dec.Driver]
		a.PickupBy = dec.PickupAt
		ev.Type, ev.DriverID = EventAssigned, a.DriverID
	}
	s.decided[id] = a
	s.publish(ev)
}

// onWindowClosed publishes the closed window's stats on the feed.
// Called by the stream with the mutex held, after the window's per-task
// decisions were delivered.
func (s *Service) onWindowClosed(bs sim.BatchStats) {
	stats := BatchStats{
		OpenedAt:  bs.OpenedAt,
		ClosedAt:  bs.ClosedAt,
		Submitted: bs.Submitted,
		Cancelled: bs.Cancelled,
		Matched:   bs.Matched,
		Rejected:  bs.Rejected,
	}
	s.publish(Event{Type: EventBatchClosed, At: bs.ClosedAt, TaskID: -1, DriverID: -1, Batch: &stats})
}

// armBatchTimer schedules a wall-clock close for the open batch window
// of a live batched service (WithBatching + WithRealTime), mapping one
// simulated second to one wall second. Must be called with the mutex
// held; it is a no-op when no window is open or the open window's timer
// is already armed.
func (s *Service) armBatchTimer() {
	if !s.liveBatch || s.closed {
		return
	}
	closeAt, open := s.st.BatchDue()
	if !open || (s.timer != nil && s.timerAt == closeAt) {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	delay := time.Duration((closeAt - s.st.Now()) * float64(time.Second))
	if delay < 0 {
		delay = 0
	}
	s.timerAt = closeAt
	s.timer = time.AfterFunc(delay, func() { s.fireBatchTimer(closeAt) })
}

// fireBatchTimer closes the window the timer was armed for, unless the
// event flow already closed it (a submission or cancellation past the
// close time drains the close first — the stale fire is then a no-op).
func (s *Service) fireBatchTimer(closeAt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if due, open := s.st.BatchDue(); open && due == closeAt {
		// A wall-clock close is a market mutation like any other: journal
		// the tick so a restored run closes the window at the same
		// instant, whatever the wall clock said. If the journal refuses
		// (disk full, closed log), the close stays pending — the next
		// event past the close time will drain it.
		if err := s.journal(recAdvance, walRecord{At: closeAt}); err == nil {
			s.st.AdvanceTo(closeAt)
		}
	}
	if s.timerAt == closeAt {
		s.timer = nil
	}
	s.armBatchTimer()
}

// toModelDriver validates and converts a public driver.
func toModelDriver(d Driver) (model.Driver, error) {
	if d.JoinAt < 0 {
		return model.Driver{}, fmt.Errorf("%w: driver %d: negative join time %g", ErrInvalidDriver, d.ID, d.JoinAt)
	}
	md := model.Driver{
		ID:       d.ID,
		Source:   geo.Point(d.Source),
		Dest:     geo.Point(d.Dest),
		Start:    d.Start,
		End:      d.End,
		SpeedKmh: d.SpeedKmh,
	}
	if err := md.Validate(); err != nil {
		return model.Driver{}, fmt.Errorf("%w: %v", ErrInvalidDriver, err)
	}
	return md, nil
}

// toModelTask validates and converts a public task, defaulting WTP.
func toModelTask(t Task) (model.Task, error) {
	mt := model.Task{
		ID:      t.ID,
		Publish: t.Publish,
		Source:  geo.Point(t.Source),
		Dest:    geo.Point(t.Dest),
		StartBy: t.StartBy,
		EndBy:   t.EndBy,
		Price:   t.Price,
		WTP:     t.WTP,
	}
	if mt.WTP == 0 {
		mt.WTP = mt.Price
	}
	if err := mt.Validate(); err != nil {
		return model.Task{}, fmt.Errorf("%w: %v", ErrInvalidTask, err)
	}
	return mt, nil
}

// checkAdmission enforces the WithMaxPending bound of a batched
// service for a submission timestamped at. The submission is shed while
// the open window already holds maxPending undecided orders — unless
// its effective time reaches the window's close, in which case
// processing it drains the window first and admission is granted so a
// full window can never wedge the market. Must be called with the
// mutex held.
func (s *Service) checkAdmission(at float64) error {
	due, open := s.st.BatchDue()
	if !open {
		return nil
	}
	pending := s.st.PendingTasks()
	if pending < s.maxPending {
		return nil
	}
	if now := s.st.Now(); at < now {
		at = now
	}
	if at >= due {
		return nil
	}
	s.shed.Add(1)
	return fmt.Errorf("%w: %d orders pending in the open window (cap %d)", ErrOverloaded, pending, s.maxPending)
}

// errClosed is the error mutators return once the service is closed:
// it matches both ErrClosed and ErrFinished (the day is settled), so
// errors.Is works with either sentinel.
func errClosed() error {
	return fmt.Errorf("%w: %w", ErrClosed, ErrFinished)
}

// simErr converts an unexpected error from the underlying stream into
// the service's typed vocabulary: a finished stream surfaces as
// ErrFinished instead of leaking the internal sentinel.
func simErr(err error) error {
	if errors.Is(err, sim.ErrFinished) {
		return fmt.Errorf("%w: %v", ErrFinished, err)
	}
	return err
}

// checkTime enforces the service's ordering policy for a submission
// timestamped at. It must be called with the mutex held.
func (s *Service) checkTime(at float64) error {
	if s.strict && at < s.st.Now() {
		return fmt.Errorf("%w: %g < %g", ErrOutOfOrder, at, s.st.Now())
	}
	return nil
}

// SubmitTask submits one rider order and returns the platform's
// instant decision: the assigned driver, or a rejection. The decision
// happens at the task's publish time (clamped to the service's current
// time if the submission is late). A service built WithMaxPending may
// instead shed the submission with ErrOverloaded — nothing is
// registered and the rider may retry.
func (s *Service) SubmitTask(ctx context.Context, t Task) (Assignment, error) {
	if err := ctx.Err(); err != nil {
		return Assignment{}, err
	}
	if s.maxPending > 0 && !s.batched {
		// Instant mode bounds submissions in flight. The gate sits
		// before the mutex so a pile-up behind a slow decision (pacing
		// clock, saturated hardware) is refused immediately instead of
		// joining the convoy.
		if n := s.inflight.Add(1); n > int64(s.maxPending) {
			s.inflight.Add(-1)
			s.shed.Add(1)
			return Assignment{}, fmt.Errorf("%w: %d submissions in flight (cap %d)", ErrOverloaded, n, s.maxPending)
		}
		defer s.inflight.Add(-1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Assignment{}, errClosed()
	}
	if _, dup := s.tasks[t.ID]; dup {
		return Assignment{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	if s.maxPending > 0 && s.batched {
		if err := s.checkAdmission(t.Publish); err != nil {
			return Assignment{}, err
		}
	}
	mt, err := toModelTask(t)
	if err != nil {
		return Assignment{}, err
	}
	if err := s.checkTime(t.Publish); err != nil {
		return Assignment{}, err
	}
	if err := s.journal(recSubmit, walRecord{Task: &t}); err != nil {
		return Assignment{}, err
	}
	dec, serr := s.st.SubmitTask(mt)
	if serr != nil {
		return Assignment{}, simErr(serr)
	}
	s.tasks[t.ID] = dec.Task
	s.taskIDs = append(s.taskIDs, t.ID)

	if dec.Pending {
		// Batched mode: the order joined the open window (closing any
		// window that was due first); its decision arrives on the feed
		// at DecideBy. The handle is recorded so Decision answers
		// identically until the close overwrites it.
		a := Assignment{TaskID: t.ID, DriverID: -1, DecidedAt: dec.At, Pending: true, DecideBy: dec.DecideAt}
		s.decided[t.ID] = a
		s.publish(Event{Type: EventPending, At: dec.At, TaskID: t.ID, DriverID: -1})
		s.armBatchTimer()
		return a, nil
	}

	a := Assignment{TaskID: t.ID, DriverID: -1, DecidedAt: dec.At}
	ev := Event{Type: EventRejected, At: dec.At, TaskID: t.ID, DriverID: -1}
	if dec.Assigned {
		a.Assigned = true
		a.DriverID = s.driverIDs[dec.Driver]
		a.PickupBy = dec.PickupAt
		ev.Type, ev.DriverID = EventAssigned, a.DriverID
	}
	s.decided[t.ID] = a
	s.publish(ev)
	return a, nil
}

// Decision reports the platform's current answer for a submitted task:
// the recorded assignment or rejection, or a pending handle while the
// task still waits in a batched service's open window. The answer is
// the decision as made — a later cancellation revoking it is reported
// through CancelOutcome and the feed, not here. Decision works on a
// closed service too (the final window was decided by Close).
func (s *Service) Decision(ctx context.Context, taskID int) (Assignment, error) {
	if err := ctx.Err(); err != nil {
		return Assignment{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tasks[taskID]; !ok {
		return Assignment{}, fmt.Errorf("%w: %d", ErrUnknownTask, taskID)
	}
	if a, ok := s.decided[taskID]; ok {
		return a, nil
	}
	// Unreachable by construction: every registered task writes its
	// decided entry at submission (pending handle or final answer).
	// Answer with a bare pending handle rather than guessing a DecideBy
	// from whatever window happens to be open now.
	return Assignment{TaskID: taskID, DriverID: -1, Pending: true}, nil
}

// AddDriver announces a driver to the running market. An unknown ID
// registers a new driver, visible to dispatch from max(JoinAt, now) —
// a JoinAt beyond the market's current time schedules the announcement
// rather than applying it early. A previously retired ID re-enters the
// market; any other known ID is rejected as a duplicate.
func (s *Service) AddDriver(ctx context.Context, d Driver) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed()
	}
	at := d.JoinAt
	if at == 0 {
		at = s.st.Now()
	}
	if err := s.checkTime(at); err != nil {
		return err
	}
	if effAt := s.st.Now(); at < effAt {
		at = effAt
	}
	if idx, known := s.drivers[d.ID]; known {
		// Only a driver who has actually left the market may re-enter:
		// a still-present driver (including one whose retirement is
		// scheduled but has not fired — the queued retire event would
		// silently undo an early rejoin) and a driver pending her first
		// announcement are both duplicates.
		if s.st.Present(idx) || !s.retired[d.ID] {
			return fmt.Errorf("%w: %d", ErrDuplicateDriver, d.ID)
		}
		if err := s.journal(recAddDriver, walRecord{Driver: &d}); err != nil {
			return err
		}
		delete(s.retired, d.ID)
		if err := s.st.JoinDriver(idx, at); err != nil {
			return simErr(err)
		}
		s.publish(Event{Type: EventDriverJoined, At: at, TaskID: -1, DriverID: d.ID})
		return nil
	}
	md, err := toModelDriver(d)
	if err != nil {
		return err
	}
	if err := s.journal(recAddDriver, walRecord{Driver: &d}); err != nil {
		return err
	}
	idx, serr := s.st.AddDriver(md, at)
	if serr != nil {
		return simErr(serr)
	}
	s.drivers[d.ID] = idx
	s.driverIDs = append(s.driverIDs, d.ID)
	s.publish(Event{Type: EventDriverJoined, At: at, TaskID: -1, DriverID: d.ID})
	return nil
}

// RetireDriver removes the driver from the market at the given time:
// she accepts no further tasks, though an in-flight assignment still
// completes. A retirement time beyond the market's current time is
// scheduled rather than applied early. A retired driver may re-enter
// later via AddDriver.
func (s *Service) RetireDriver(ctx context.Context, driverID int, at float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed()
	}
	idx, ok := s.drivers[driverID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDriver, driverID)
	}
	if err := s.checkTime(at); err != nil {
		return err
	}
	if err := s.journal(recRetire, walRecord{ID: driverID, At: at}); err != nil {
		return err
	}
	if effAt := s.st.Now(); at < effAt {
		at = effAt
	}
	if err := s.st.RetireDriver(idx, at); err != nil {
		return simErr(err)
	}
	s.retired[driverID] = true
	s.publish(Event{Type: EventDriverRetired, At: at, TaskID: -1, DriverID: driverID})
	return nil
}

// CancelTask withdraws a rider order at the given time. A cancellation
// landing before the assigned driver reaches the pickup revokes the
// assignment and frees the driver; after pickup it is too late and the
// ride proceeds (Cancelled reports which happened).
func (s *Service) CancelTask(ctx context.Context, taskID int, at float64) (CancelOutcome, error) {
	if err := ctx.Err(); err != nil {
		return CancelOutcome{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CancelOutcome{}, errClosed()
	}
	idx, ok := s.tasks[taskID]
	if !ok {
		return CancelOutcome{}, fmt.Errorf("%w: %d", ErrUnknownTask, taskID)
	}
	if err := s.checkTime(at); err != nil {
		return CancelOutcome{}, err
	}
	if at <= s.taskPublish(idx) && s.strict {
		return CancelOutcome{}, fmt.Errorf("%w: task %d published at %g, cancel at %g",
			ErrInvalidCancel, taskID, s.taskPublish(idx), at)
	}
	if err := s.journal(recCancel, walRecord{ID: taskID, At: at}); err != nil {
		return CancelOutcome{}, err
	}
	freed, cancelled, serr := s.st.CancelTask(idx, at)
	if serr != nil {
		return CancelOutcome{}, simErr(serr)
	}
	out := CancelOutcome{TaskID: taskID, Cancelled: cancelled, FreedDriverID: -1}
	if cancelled {
		if prev, ok := s.decided[taskID]; !ok || prev.Pending {
			// Withdrawn while waiting in its batch window: the platform
			// will never decide it, so Decision reads it as unassigned
			// at the cancellation instant rather than pending forever.
			s.decided[taskID] = Assignment{TaskID: taskID, DriverID: -1, DecidedAt: s.st.Now()}
		}
		ev := Event{Type: EventCancelled, At: s.st.Now(), TaskID: taskID, DriverID: -1}
		if freed >= 0 {
			out.FreedDriverID = s.driverIDs[freed]
			ev.DriverID = out.FreedDriverID
		}
		s.publish(ev)
	}
	return out, nil
}

// taskPublish returns the registered publish time of a task by engine
// index. Must be called with the mutex held.
func (s *Service) taskPublish(idx int) float64 { return s.st.TaskPublish(idx) }

// Snapshot returns the market's aggregate state as of the last
// processed event, with accounts settled as if every in-flight
// commitment completed.
func (s *Service) Snapshot(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.finalStats, nil
	}
	res, err := s.st.Snapshot()
	if err != nil {
		return Stats{}, simErr(err)
	}
	return s.stats(res), nil
}

// stats converts a settled simulator result into public Stats. Must be
// called with the mutex held.
func (s *Service) stats(res sim.Result) Stats {
	return Stats{
		Now:            s.st.Now(),
		Drivers:        s.st.DriverCount(),
		PresentDrivers: s.st.PresentDrivers(),
		Tasks:          s.st.TaskCount(),
		Served:         res.Served,
		Rejected:       res.Rejected,
		Cancelled:      res.Cancelled,
		Pending:        s.st.PendingTasks(),
		Revenue:        res.Revenue,
		Profit:         res.TotalProfit,
		Shed:           int(s.shed.Load()),
		MaxPending:     s.maxPending,
		FeedDrops:      s.feedDrops,
	}
}

// Close drains the market's remaining internal events — on a batched
// service that includes deciding the still-open window, whose
// assignments reach the feed before the channels close — settles every
// driver's account and returns the final Stats. Subscriber channels
// are closed. Close is idempotent; later calls return the same Stats.
func (s *Service) Close() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.finalStats, nil
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	// Durable shutdown: persist a final snapshot of the pre-finish state
	// and journal the finish itself, so Restore rebuilds this exact
	// moment and settles the same books; then flush and fsync the tail
	// whatever the fsync policy. Journal failures here must not wedge
	// shutdown — closeJournal reports them after the books settle.
	jerr := s.journalFinish()
	res, err := s.st.Finish()
	if err != nil {
		// A finished stream under an open service is unreachable by
		// construction; surface it typed rather than panicking.
		return Stats{}, simErr(err)
	}
	stats := s.stats(res)
	// The stream is finished (sim.ErrFinished from here on); stats()
	// above read the settled counters, which stay valid.
	s.final = &res
	s.finalStats = stats
	s.closed = true
	for id, sub := range s.subs {
		close(sub.ch)
		delete(s.subs, id)
	}
	if cerr := s.closeJournal(jerr); cerr != nil {
		return stats, cerr
	}
	return stats, nil
}

// Halt stops the service crash-consistently: the write-ahead log is
// synced and closed WITHOUT a finish record, the books are NOT settled,
// and pending window tasks stay pending — so a later Restore resumes
// the market exactly where it stopped instead of finding a settled day.
// This is the cooperative half of a rolling restart; the uncooperative
// half (kill -9) leaves the same log on disk, which is the point.
// After Halt, mutations return ErrClosed and Snapshot answers the stats
// as of the halt. Halt is idempotent with Close: whichever runs first
// decides whether the day settled.
func (s *Service) Halt() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.finalStats, nil
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	res, err := s.st.Snapshot()
	if err != nil {
		return Stats{}, simErr(err)
	}
	stats := s.stats(res)
	s.finalStats = stats
	s.closed = true
	for id, sub := range s.subs {
		close(sub.ch)
		delete(s.subs, id)
	}
	var jerr error
	if s.jr != nil {
		if serr := s.jr.lg.Sync(); serr != nil {
			jerr = fmt.Errorf("dispatch: syncing journal: %w", serr)
		}
	}
	if cerr := s.closeJournal(jerr); cerr != nil {
		return stats, cerr
	}
	return stats, nil
}
