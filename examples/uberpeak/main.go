// Uberpeak simulates a full online day of an Uber-style market with
// zone-based surge pricing (§II, Eq. 15): tasks are priced at publish
// time by the demand/supply imbalance of their pickup zone, drivers are
// dispatched by the maximum-marginal-value heuristic (Algorithm 4), and
// the run reports how the surge multiplier tracked the rush hours.
//
// Run with:
//
//	go run ./examples/uberpeak
package main

import (
	"fmt"
	"log"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/online"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	cfg := trace.NewConfig(99, 400, 50, trace.HomeWorkHome) // full-time fleet
	gen := trace.NewGenerator(cfg)
	tasks := gen.GenerateTasks()
	drivers := gen.GenerateDrivers()

	// Surge pricer over a 6x6 zone grid, capped at 3x. Demand/supply
	// observations decay every simulated half hour.
	grid := geo.NewGrid(cfg.Box, 6, 6)
	surge := pricing.NewSurge(pricing.NewLinear(cfg.Market, 1), grid, 3)

	// Price tasks in publish order, decaying observations between half-
	// hour buckets so surge follows the demand curve of the day. Each
	// bucket re-observes the supply of drivers whose shift covers it,
	// so the multiplier reflects the *current* demand/supply imbalance.
	observeSupply := func(at float64) {
		for _, d := range drivers {
			if d.Start <= at && at <= d.End {
				surge.ObserveSupply(d.Source, 1)
			}
		}
	}
	observeSupply(0)
	var bucket float64
	var multipliers []float64
	peak := 1.0
	var peakHour float64
	for i := range tasks {
		for tasks[i].Publish > bucket+1800 {
			surge.Decay(0.6)
			bucket += 1800
			observeSupply(bucket)
		}
		surge.ObserveDemand(tasks[i].Source, 1)
		m := surge.Multiplier(tasks[i].Source)
		multipliers = append(multipliers, m)
		if m > peak {
			peak = m
			peakHour = tasks[i].Publish / 3600
		}
		tasks[i].Price = surge.Price(tasks[i])
		tasks[i].WTP = tasks[i].Price * 1.5
	}

	if err := model.ValidateAll(cfg.Market, drivers, tasks); err != nil {
		log.Fatal(err)
	}

	// Dispatch online with maxMargin.
	eng, err := sim.New(cfg.Market, drivers, 1)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Run(tasks, online.MaxMargin{})

	var avgMult float64
	surged := 0
	for _, m := range multipliers {
		avgMult += m
		if m > 1.01 {
			surged++
		}
	}
	avgMult /= float64(len(multipliers))

	fmt.Printf("uber-style day: %d orders, %d drivers, 6x6 surge zones\n\n", len(tasks), len(drivers))
	fmt.Printf("surged orders        %d / %d (%.0f%%)\n", surged, len(tasks), 100*float64(surged)/float64(len(tasks)))
	fmt.Printf("avg surge multiplier %.2f\n", avgMult)
	fmt.Printf("peak multiplier      %.2f at hour %.1f\n\n", peak, peakHour)
	fmt.Printf("served               %d (%.0f%%)\n", res.Served, 100*res.ServeRate())
	fmt.Printf("platform revenue     %.2f\n", res.Revenue)
	fmt.Printf("drivers' profit      %.2f\n", res.TotalProfit)
	fmt.Printf("avg revenue/driver   %.2f\n", res.AvgRevenuePerDriver())
}
