// Streamserve: the open-loop market end to end, in process. A
// dispatch.Service is opened over a morning fleet; then four actors run
// against it concurrently, the way live traffic actually arrives —
//
//   - riders submitting orders in publish order,
//   - a fleet desk retiring drivers early and announcing replacements,
//   - fickle riders cancelling a slice of assigned orders before pickup,
//   - an operations dashboard following the assignment-event feed.
//
// Everything the actors see — instant assignments, revocations, churn —
// streams out of the same event-driven core the batch experiments use,
// and the closing books balance to the task exactly.
//
// Run with:
//
//	go run ./examples/streamserve
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/dispatch"
	"repro/internal/trace"
)

func main() {
	const (
		drivers = 150
		orders  = 600
	)
	cfg := trace.NewConfig(7, orders, drivers, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	market := dispatch.Market{}
	for i, d := range tr.Drivers {
		market.Drivers = append(market.Drivers, dispatch.Driver{
			ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
			Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
		})
	}
	svc, err := dispatch.New(market,
		dispatch.WithDispatcher(dispatch.MaxMargin),
		dispatch.WithShards(4),
		dispatch.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// Operations dashboard: tally the feed while the market runs.
	feed, unsubscribe := svc.Subscribe(4096)
	defer unsubscribe()
	tally := make(map[dispatch.EventType]int)
	var dashboard sync.WaitGroup
	dashboard.Add(1)
	go func() {
		defer dashboard.Done()
		for ev := range feed {
			tally[ev.Type]++
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup

	// Riders: submit the day's orders in publish order, cancelling 15%
	// of assignments moments later.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i, t := range tr.Tasks {
			a, err := svc.SubmitTask(ctx, dispatch.Task{
				ID: i, Publish: t.Publish, Source: dispatch.Point(t.Source), Dest: dispatch.Point(t.Dest),
				StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
			})
			if err != nil {
				log.Fatalf("submit %d: %v", i, err)
			}
			if a.Assigned && rng.Float64() < 0.15 {
				if _, err := svc.CancelTask(ctx, i, a.DecidedAt+30); err != nil {
					log.Fatalf("cancel %d: %v", i, err)
				}
			}
		}
	}()

	// Fleet desk: every so often one driver calls it a day and a fresh
	// one is announced in her place.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			victim := k * 7 % drivers
			if err := svc.RetireDriver(ctx, victim, 0); err != nil {
				log.Fatalf("retire %d: %v", victim, err)
			}
			src := market.Drivers[victim].Source
			if err := svc.AddDriver(ctx, dispatch.Driver{
				ID: drivers + k, Source: src, Dest: src,
				Start: 0, End: 24 * 3600,
			}); err != nil {
				log.Fatalf("announce %d: %v", drivers+k, err)
			}
		}
	}()

	wg.Wait()
	snap, err := svc.Snapshot(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mid-day snapshot: t=%.0fs, %d/%d drivers present, %d orders in\n",
		snap.Now, snap.PresentDrivers, snap.Drivers, snap.Tasks)

	stats, err := svc.Close()
	if err != nil {
		log.Fatal(err)
	}
	dashboard.Wait()

	fmt.Printf("final books:      served %d, rejected %d, cancelled %d (of %d orders)\n",
		stats.Served, stats.Rejected, stats.Cancelled, stats.Tasks)
	fmt.Printf("                  revenue %.2f, drivers' profit %.2f\n", stats.Revenue, stats.Profit)
	fmt.Printf("event feed:       %d assigned, %d rejected, %d cancelled, %d joins, %d retirements\n",
		tally[dispatch.EventAssigned], tally[dispatch.EventRejected], tally[dispatch.EventCancelled],
		tally[dispatch.EventDriverJoined], tally[dispatch.EventDriverRetired])
	if stats.Served+stats.Rejected+stats.Cancelled != stats.Tasks {
		log.Fatal("books do not balance")
	}
	fmt.Println("books balance: served + rejected + cancelled == submitted ✓")
}
