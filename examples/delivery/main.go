// Delivery plans an on-demand product-delivery day (Google Express /
// Amazon Prime Now in the paper's introduction): orders are placed
// online with generous delivery windows ("within the promised time
// frame"), all demand is known before vans leave the depot, and the
// offline greedy algorithm builds each courier's delivery route. Wide
// windows make long task chains feasible — the opposite regime from the
// Waze Rider example — and show how the same framework covers both
// two-sided markets of §I.
//
// Run with:
//
//	go run ./examples/delivery
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/offline"
	"repro/internal/trace"
)

func main() {
	// Delivery market: 300 parcels over a 12-hour service day, 25 vans
	// out of two depots, 2–4 hour delivery windows (slack >> 1).
	cfg := trace.NewConfig(2024, 300, 25, trace.HomeWorkHome)
	cfg.DayEnd = 12 * 3600
	cfg.SlackMin = 4  // a parcel may sit in the van ~4-10x its direct
	cfg.SlackMax = 10 // drive time before its promised deadline
	cfg.PickupWindowMin = 30 * 60
	cfg.PickupWindowMax = 3 * 3600
	cfg.ShiftMean = 8 * 3600
	cfg.ShiftStd = 30 * 60
	cfg.ShiftMinLen = 6 * 3600
	cfg.ShiftMaxLen = 9 * 3600
	// Two depots rather than city-wide hotspots.
	cfg.Hotspots = []trace.Hotspot{
		{Center: geo.Point{Lat: 41.17, Lon: -8.62}, StdKm: 3, Weight: 0.5},
		{Center: geo.Point{Lat: 41.14, Lon: -8.58}, StdKm: 3, Weight: 0.5},
	}
	tr := trace.NewGenerator(cfg).Generate(nil)

	problem, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	g := problem.Graph()
	fmt.Printf("delivery day: %d parcels, %d vans\n", g.M(), g.N())
	fmt.Printf("task map: %d arcs, diameter %d (wide windows → long chains)\n\n",
		g.ArcCount(), g.Diameter())

	sol := offline.Greedy(g)
	fmt.Printf("parcels routed   %d / %d (%.0f%%)\n",
		sol.ServedTasks(), g.M(), 100*float64(sol.ServedTasks())/float64(g.M()))
	fmt.Printf("vans used        %d / %d\n", len(sol.Paths), g.N())
	fmt.Printf("courier profit   %.2f\n", sol.TotalProfit)
	fmt.Printf("greedy DP calls  %d (lazy evaluation; naive would need %d×%d per round)\n\n",
		sol.Recomputes, g.N(), g.M())

	// Longest route, as a schedule preview.
	var longest int
	for i, p := range sol.Paths {
		if len(p.Tasks) > len(sol.Paths[longest].Tasks) {
			longest = i
		}
	}
	if len(sol.Paths) > 0 {
		p := sol.Paths[longest]
		fmt.Printf("busiest van (driver %d, %d stops, profit %.2f):\n", p.Driver, len(p.Tasks), p.Profit)
		for _, tk := range p.Tasks {
			task := problem.Tasks[tk]
			fmt.Printf("  parcel %3d  window %5.1fh–%5.1fh  fare %6.2f\n",
				task.ID, task.StartBy/3600, task.EndBy/3600, task.Price)
		}
	}
}
