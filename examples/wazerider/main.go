// Wazerider models Google's Waze Rider commute market (§IV-C of the
// paper): part-time drivers who each take at most a couple of riders
// "already headed in the same direction". The scenario caps each
// driver's working window to a single commute, which keeps the task-map
// diameter D tiny — the regime where the greedy algorithm's 1/(D+1)
// guarantee is strongest (D=1 gives a 1/2-approximation; the paper
// highlights exactly this for Waze Rider).
//
// Run with:
//
//	go run ./examples/wazerider
package main

import (
	"fmt"
	"log"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/trace"
)

func main() {
	// Commuter market: each driver offers one short commute window
	// (20–35 minutes), distinct home → work endpoints. A window that
	// barely fits one or two rides keeps the diameter D small.
	cfg := trace.NewConfig(7, 150, 60, trace.Hitchhiking)
	cfg.ShiftMean = 25 * 60
	cfg.ShiftStd = 5 * 60
	cfg.ShiftMinLen = 20 * 60
	cfg.ShiftMaxLen = 35 * 60
	tr := trace.NewGenerator(cfg).Generate(nil)

	problem, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	g := problem.Graph()
	d := g.Diameter()
	fmt.Printf("commute market: %d drivers, %d riders\n", g.N(), g.M())
	fmt.Printf("task-map diameter D = %d → greedy guarantees ≥ 1/%d of optimum\n", d, d+1)

	sol := offline.Greedy(g)
	ub := bound.Auto(g, sol.TotalProfit)
	ratio := core.PerformanceRatio(sol.TotalProfit, ub.Bound)
	fmt.Printf("\ngreedy profit      %.2f\n", sol.TotalProfit)
	fmt.Printf("upper bound Z*_f   %.2f (%s)\n", ub.Bound, ub.Method)
	fmt.Printf("measured ratio     %.4f (guarantee: %.4f)\n", ratio, 1/float64(d+1))

	// Ride-chain profile: how many riders does each matched commuter
	// carry? In the Waze Rider regime this concentrates on 1–2.
	hist := map[int]int{}
	for _, p := range sol.Paths {
		hist[len(p.Tasks)]++
	}
	fmt.Println("\nriders per matched driver:")
	for k := 1; k <= d; k++ {
		if hist[k] > 0 {
			fmt.Printf("  %d rider(s): %d drivers\n", k, hist[k])
		}
	}
	matched := 0
	for _, p := range sol.Paths {
		matched += len(p.Tasks)
	}
	fmt.Printf("\nriders matched: %d / %d (%.0f%%)\n",
		matched, g.M(), 100*float64(matched)/float64(g.M()))
}
