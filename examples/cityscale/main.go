// Cityscale runs one online day at a fleet size the paper's evaluation
// never reaches (its §VI sweep tops out at 300 drivers): ten thousand
// drivers against a day of orders, dispatched through every candidate
// source — the exact linear scan of Algorithms 3–4, the grid-indexed
// pre-filter, and the zone-sharded engine — to show that indexing and
// sharding change the wall-clock, never the market outcome. It then
// replays the same day under driver churn and rider cancellations (the
// dynamics the paper's static fleet could not express) and finishes
// with the parallel experiment sweep that regenerates Figs 6–9.
//
// Run with:
//
//	go run ./examples/cityscale
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const drivers, tasks = 10_000, 800
	cfg := trace.NewConfig(7, tasks, drivers, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	fmt.Printf("city-scale day: %d drivers, %d orders\n\n", drivers, tasks)

	run := func(label string, src sim.CandidateSource) sim.Result {
		eng, err := sim.New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetCandidateSource(src)
		start := time.Now()
		res := eng.Run(tr.Tasks, online.MaxMargin{})
		fmt.Printf("%-14s served %d  revenue %.2f  profit %.2f  in %v\n",
			label, res.Served, res.Revenue, res.TotalProfit, time.Since(start).Round(time.Millisecond))
		return res
	}

	scan := run("linear scan", nil)
	for _, alt := range []struct {
		label string
		src   sim.CandidateSource
	}{
		{"grid-indexed", sim.NewGridSource(nil)},
		{"sharded(4)", sim.NewShardedSource(4)},
	} {
		res := run(alt.label, alt.src)
		if scan.Served != res.Served || scan.Revenue != res.Revenue || scan.TotalProfit != res.TotalProfit {
			log.Fatalf("cityscale: %s run diverged from the scan — this is a bug", alt.label)
		}
	}
	fmt.Println("\nidentical outcomes; indexing and sharding only change who gets examined, not who gets picked")

	// The same day as a two-sided market really experiences it: part of
	// the fleet joins mid-day, part retires early, some riders cancel.
	events := trace.WithChurn(tr, trace.ChurnConfig{
		Seed: 99, JoinFraction: 0.25, RetireFraction: 0.2, CancelFraction: 0.15,
	})
	eng, err := sim.New(cfg.Market, tr.Drivers, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng.SetCandidateSource(sim.NewShardedSource(4))
	churnStart := time.Now()
	churned := eng.RunScenario(tr.Tasks, events, online.MaxMargin{})
	fmt.Printf("\nchurned day (%d events): served %d (static day: %d), %d rides cancelled before pickup, in %v\n",
		len(events), churned.Served, scan.Served, churned.Cancelled, time.Since(churnStart).Round(time.Millisecond))

	// The §VI density sweep, fanned out over all cores. Each (density,
	// seed) point owns its engines, so the series match a serial run.
	fmt.Println("\nregenerating Figs 6–9 with the parallel sweep...")
	ecfg := experiments.Default()
	start := time.Now()
	m, err := experiments.RunDensitySweep(context.Background(), ecfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d density points in %v\n", len(m.Drivers), time.Since(start).Round(time.Millisecond))
	last := len(m.Drivers) - 1
	for i, name := range m.Names {
		fmt.Printf("  %-10s serve rate %.2f -> %.2f as drivers go %d -> %d\n",
			name, m.ServeRate[i][0], m.ServeRate[i][last], m.Drivers[0], m.Drivers[last])
	}
}
