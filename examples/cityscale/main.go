// Cityscale runs one online day at a fleet size the paper's evaluation
// never reaches (its §VI sweep tops out at 300 drivers): ten thousand
// drivers against a day of orders, dispatched twice — once with the
// exact linear-scan candidate generation of Algorithms 3–4, once through
// the grid-indexed candidate source — to show that the spatial index
// changes the wall-clock, not the market outcome. It finishes with the
// parallel experiment sweep that regenerates Figs 6–9 using every core.
//
// Run with:
//
//	go run ./examples/cityscale
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const drivers, tasks = 10_000, 800
	cfg := trace.NewConfig(7, tasks, drivers, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)
	fmt.Printf("city-scale day: %d drivers, %d orders\n\n", drivers, tasks)

	run := func(label string, src sim.CandidateSource) sim.Result {
		eng, err := sim.New(cfg.Market, tr.Drivers, 1)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetCandidateSource(src)
		start := time.Now()
		res := eng.Run(tr.Tasks, online.MaxMargin{})
		fmt.Printf("%-14s served %d  revenue %.2f  profit %.2f  in %v\n",
			label, res.Served, res.Revenue, res.TotalProfit, time.Since(start).Round(time.Millisecond))
		return res
	}

	scan := run("linear scan", nil)
	indexed := run("grid-indexed", sim.NewGridSource(nil))
	if scan.Served != indexed.Served || scan.Revenue != indexed.Revenue || scan.TotalProfit != indexed.TotalProfit {
		log.Fatal("cityscale: indexed run diverged from the scan — this is a bug")
	}
	fmt.Println("\nidentical outcomes; the index only changes who gets examined, not who gets picked")

	// The §VI density sweep, fanned out over all cores. Each (density,
	// seed) point owns its engines, so the series match a serial run.
	fmt.Println("\nregenerating Figs 6–9 with the parallel sweep...")
	ecfg := experiments.Default()
	start := time.Now()
	m, err := experiments.RunDensitySweep(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d density points in %v\n", len(m.Drivers), time.Since(start).Round(time.Millisecond))
	last := len(m.Drivers) - 1
	for i, name := range m.Names {
		fmt.Printf("  %-10s serve rate %.2f -> %.2f as drivers go %d -> %d\n",
			name, m.ServeRate[i][0], m.ServeRate[i][last], m.Drivers[0], m.Drivers[last])
	}
}
