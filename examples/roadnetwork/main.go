// Roadnetwork treats shortest-path routing over a synthetic Porto street
// grid as ground truth and compares two planners on the same day of
// demand: one that plans with true road distances, and one that plans
// with optimistic straight-line distances. Crow-fly planning sees more
// feasible task chains than the streets allow (network circuity ≈ 1.2–
// 1.4x), so part of its plan is undeliverable: exactly the estimation
// error the paper's travel-time estimates l_{n,m,m'} must avoid. It also
// shows how any geo.DistanceFunc (here roadnet.Router.Dist) plugs into
// the market.
//
// Run with:
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/offline"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func main() {
	// Street network + router: the ground truth metric.
	g, err := roadnet.GenerateGrid(roadnet.DefaultGridConfig())
	if err != nil {
		log.Fatal(err)
	}
	router := roadnet.NewRouter(g, geo.PortoBox, 10)
	fmt.Printf("street network: %d intersections, %d road segments, circuity %.2f\n\n",
		g.NumNodes(), g.NumEdges(), router.Circuity(300))

	// Generate the day against road reality: task windows reflect true
	// (network) driving times.
	cfg := trace.NewConfig(5, 150, 25, trace.Hitchhiking)
	cfg.Market.Dist = router.Dist
	tr := trace.NewGenerator(cfg).Generate(nil)

	// Ground truth task map for validating any plan.
	roadProblem, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	roadGraph := roadProblem.Graph()

	// Planner A: road-aware.
	roadPlan := offline.Greedy(roadGraph)
	fmt.Printf("road-aware plan:  %3d tasks, profit %8.2f (all deliverable by construction)\n",
		roadPlan.ServedTasks(), roadPlan.TotalProfit)

	// Planner B: crow-fly distances on the same demand.
	crowMkt := cfg.Market
	crowMkt.Dist = geo.Equirectangular
	crowProblem, err := core.NewProblem(crowMkt, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	crowPlan := offline.Greedy(crowProblem.Graph())

	// Execute the crow-fly plan against road reality: a path survives
	// only if it is still a feasible chain at network distances.
	deliverable := 0.0
	broken := 0
	kept := 0
	for _, p := range crowPlan.Paths {
		if profit, err := roadGraph.PathProfit(p.Driver, p.Tasks); err == nil {
			deliverable += profit
			kept += len(p.Tasks)
		} else {
			broken++
		}
	}
	fmt.Printf("crow-fly plan:    %3d tasks, paper profit %8.2f\n",
		crowPlan.ServedTasks(), crowPlan.TotalProfit)
	fmt.Printf("  on real roads:  %3d tasks deliverable, %d of %d routes break, real profit %8.2f\n\n",
		kept, broken, len(crowPlan.Paths), deliverable)

	fmt.Printf("estimation gap: crow-fly promises %.0f%% of road-aware profit but delivers %.0f%%\n",
		100*crowPlan.TotalProfit/roadPlan.TotalProfit,
		100*deliverable/roadPlan.TotalProfit)

	// Sanity: the road-aware plan is optimal-ish for reality; print the
	// arc-count gap that causes the overpromise.
	fmt.Printf("task-map arcs: road %d vs crow-fly %d (+%.0f%% phantom arcs)\n",
		roadGraph.ArcCount(), crowProblem.Graph().ArcCount(),
		100*float64(crowProblem.Graph().ArcCount()-roadGraph.ArcCount())/float64(roadGraph.ArcCount()))

}
