// Quickstart: generate a small synthetic market, serve its day of
// orders through the public dispatch API under both online policies,
// and compare the outcomes with the offline greedy algorithm and the
// LP-relaxation upper bound Z*_f.
//
// The online half of this example is what an external consumer of the
// framework writes: construct dispatch.New over an initial fleet,
// submit tasks one at a time, read the instant decisions, Close for the
// settled books. The offline half dips into the internal packages the
// way the repository's own experiments do — a batch yardstick the
// streaming service is measured against.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dispatch"
	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// 1. Generate one synthetic day of the Porto market: 120 orders,
	//    20 commuting ("hitchhiking") drivers, default surge-free fares.
	cfg := trace.NewConfig(42, 120, 20, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	// 2. Offline yardstick: the greedy algorithm with full information,
	//    and the upper bound Z*_f.
	problem, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	g := problem.Graph()
	fmt.Printf("market: %d drivers, %d tasks, %d task-map arcs, diameter %d\n",
		g.N(), g.M(), g.ArcCount(), g.Diameter())
	offline, err := core.GreedySolver{}.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	ub := bound.Auto(g, offline.Profit)
	fmt.Printf("upper bound Z*_f = %.2f (%s)\n\n", ub.Bound, ub.Method)

	// 3. The same day served online through the public API: the fleet
	//    is registered upfront, orders arrive one at a time, and every
	//    submission gets its answer before the next is placed.
	market := dispatch.Market{}
	for i, d := range tr.Drivers {
		market.Drivers = append(market.Drivers, dispatch.Driver{
			ID: i, Source: dispatch.Point(d.Source), Dest: dispatch.Point(d.Dest),
			Start: d.Start, End: d.End, SpeedKmh: d.SpeedKmh,
		})
	}
	ctx := context.Background()
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "algorithm", "profit", "revenue", "served", "ratio")
	for _, policy := range []dispatch.Policy{dispatch.MaxMargin, dispatch.Nearest} {
		svc, err := dispatch.New(market,
			dispatch.WithDispatcher(policy), dispatch.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		for i, t := range tr.Tasks {
			if _, err := svc.SubmitTask(ctx, dispatch.Task{
				ID: i, Publish: t.Publish, Source: dispatch.Point(t.Source), Dest: dispatch.Point(t.Dest),
				StartBy: t.StartBy, EndBy: t.EndBy, Price: t.Price, WTP: t.WTP,
			}); err != nil {
				log.Fatal(err)
			}
		}
		stats, err := svc.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %8.2f %8.2f %8d %8.4f\n",
			policy, stats.Profit, stats.Revenue, stats.Served,
			core.PerformanceRatio(stats.Profit, ub.Bound))
	}
	fmt.Printf("%-12s %8.2f %8.2f %8d %8.4f\n",
		offline.Algorithm, offline.Profit, offline.Revenue, offline.Served,
		core.PerformanceRatio(offline.Profit, ub.Bound))
}
