// Quickstart: generate a small synthetic market, run the offline greedy
// algorithm and both online heuristics against it, and compare everyone
// with the LP-relaxation upper bound Z*_f.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bound"
	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/trace"
)

func main() {
	// 1. Generate one synthetic day of the Porto market: 120 orders,
	//    20 commuting ("hitchhiking") drivers, default surge-free fares.
	cfg := trace.NewConfig(42, 120, 20, trace.Hitchhiking)
	tr := trace.NewGenerator(cfg).Generate(nil)

	// 2. Bundle it into an optimization problem.
	problem, err := core.NewProblem(cfg.Market, tr.Drivers, tr.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	g := problem.Graph()
	fmt.Printf("market: %d drivers, %d tasks, %d task-map arcs, diameter %d\n",
		g.N(), g.M(), g.ArcCount(), g.Diameter())

	// 3. Solve offline (Algorithm 1) and online (Algorithms 3 and 4).
	solvers := []core.Solver{
		core.GreedySolver{},
		core.OnlineSolver{Dispatcher: online.MaxMargin{}, Seed: 1},
		core.OnlineSolver{Dispatcher: online.Nearest{}, Seed: 1},
	}
	var sols []core.Solution
	for _, s := range solvers {
		sol, err := s.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		sols = append(sols, sol)
	}

	// 4. Compute the upper bound Z*_f and report performance ratios.
	ub := bound.Auto(g, sols[0].Profit)
	fmt.Printf("upper bound Z*_f = %.2f (%s)\n\n", ub.Bound, ub.Method)
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "algorithm", "profit", "revenue", "served", "ratio")
	for _, sol := range sols {
		fmt.Printf("%-12s %8.2f %8.2f %8d %8.4f\n",
			sol.Algorithm, sol.Profit, sol.Revenue, sol.Served,
			core.PerformanceRatio(sol.Profit, ub.Bound))
	}
}
