// Package repro is a from-scratch Go reproduction of "An Optimization
// Framework For Online Ride-sharing Markets" (Jia, Xu, Liu — ICDCS
// 2017), grown into a system that serves the paper's online market as
// live traffic: a generalized two-sided market model, an offline greedy
// algorithm with a tight 1/(D+1) approximation ratio, online dispatch
// heuristics over an event-driven zone-sharded engine, and a streaming
// dispatch service with an HTTP front end.
//
// Start at the dispatch package — the repository's public API and the
// intended entry point for consumers:
//
//	svc, _ := dispatch.New(dispatch.Market{Drivers: fleet},
//	    dispatch.WithDispatcher(dispatch.MaxMargin),
//	    dispatch.WithShards(4))
//	a, _ := svc.SubmitTask(ctx, order) // instant decision
//	stats, _ := svc.Close()            // settled books
//
// It exposes the market open-loop — submit a task now, get an
// assignment now, with drivers joining, retiring and riders cancelling
// while the market runs — and guarantees that replaying a whole day
// through it is bit-identical to the internal batch simulator. A
// service built dispatch.WithBatching(window, algo) runs the paper's
// batched mode on the same loop: orders accumulate per window, a
// maximum-weight matching clears each window at its close, and
// SubmitTask answers with a pending handle resolved on the event feed.
// `rideshare serve` puts the same service behind HTTP/JSON (see
// cmd/rideshare), examples/quickstart and examples/streamserve are
// runnable starting points.
//
// The reproduction itself lives under internal/ (see DESIGN.md for the
// module map): the offline algorithms and bounds, the trace-driven
// evaluation harness regenerating every figure of the paper's §VI, and
// the simulator core. The benchmarks in this package regenerate the
// paper's tables and figures — see EXPERIMENTS.md.
package repro
