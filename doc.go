// Package repro is a from-scratch Go reproduction of "An Optimization
// Framework For Online Ride-sharing Markets" (Jia, Xu, Liu — ICDCS
// 2017): a generalized two-sided market model for taxi and delivery
// platforms, an offline greedy algorithm for the maximum-value
// node-disjoint-paths formulation with a tight 1/(D+1) approximation
// ratio, two online dispatch heuristics, and a trace-driven evaluation
// harness that regenerates every figure of the paper's §VI.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/rideshare is the CLI front end and examples/ contains
// runnable scenarios. The benchmarks in this package regenerate the
// paper's tables and figures — see EXPERIMENTS.md.
package repro
